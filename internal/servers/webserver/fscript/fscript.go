// Package fscript is a small server-side template language standing in
// for the PHP interpreter behind the paper's web server (§4.2). A page is
// literal HTML with embedded <?fs ... ?> script blocks; scripts have
// integer and string variables, arithmetic, conditionals, bounded loops,
// and echo. Like the PHP layer in the paper, its role in the benchmark is
// to burn per-request CPU inside the server's request path.
//
// Example:
//
//	<html><?fs
//	  total = 0;
//	  for i = 1 to n { total = total + i*i; }
//	  echo "sum: "; echo total;
//	?></html>
//
// Pages execute two ways. The interpreter below walks the AST — the
// fallback that handles any script. Known templates additionally carry a
// CompiledPage (see RegisterCompiled and the fscript/compile package):
// straight-line Go generated from the same AST, with loops as native
// for loops over int64 locals and echo as appends into a caller-supplied
// []byte — byte-for-byte identical output at a fraction of the cost.
package fscript

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxSteps bounds script execution; exceeding it aborts the page (a
// server must not let one request loop forever). Env.StepLimit can
// tighten it per execution.
const MaxSteps = 10_000_000

// Sentinel errors shared by the interpreter and compiled pages, so the
// two paths fail byte-identically.
var (
	// ErrStepLimit aborts a script that exceeds its step budget.
	ErrStepLimit = errors.New("fscript: step limit exceeded")
	// ErrDivZero aborts integer division by zero.
	ErrDivZero = errors.New("fscript: division by zero")
	// ErrModZero aborts modulo by zero.
	ErrModZero = errors.New("fscript: modulo by zero")
)

// Value is an FScript value: int64 or string.
type Value struct {
	Str   string
	Int   int64
	IsStr bool
}

// IntVal wraps an integer.
func IntVal(v int64) Value { return Value{Int: v} }

// StrVal wraps a string.
func StrVal(s string) Value { return Value{Str: s, IsStr: true} }

func (v Value) text() string {
	if v.IsStr {
		return v.Str
	}
	return strconv.FormatInt(v.Int, 10)
}

// appendText appends the value's rendered form without allocating (the
// int case is strconv.AppendInt straight into the output buffer).
func (v Value) appendText(b []byte) []byte {
	if v.IsStr {
		return append(b, v.Str...)
	}
	return strconv.AppendInt(b, v.Int, 10)
}

func (v Value) truthy() bool {
	if v.IsStr {
		return v.Str != ""
	}
	return v.Int != 0
}

// Page is a parsed template ready for repeated execution.
type Page struct {
	segments []Segment
}

// Segment is one parsed template piece: literal HTML (Script nil) or a
// script block. Exported read-only for the compiler backend
// (fscript/compile); mutating a Page's segments after Parse is not
// supported.
type Segment struct {
	Literal string // emitted verbatim when Script is nil
	Script  []Stmt // parsed block
}

// Segments exposes the parsed template for the compiler backend.
func (p *Page) Segments() []Segment { return p.segments }

// Parse splits the template into literal and script segments and parses
// every script block.
func Parse(src string) (*Page, error) {
	p := &Page{}
	for {
		open := strings.Index(src, "<?fs")
		if open < 0 {
			if src != "" {
				p.segments = append(p.segments, Segment{Literal: src})
			}
			return p, nil
		}
		if open > 0 {
			p.segments = append(p.segments, Segment{Literal: src[:open]})
		}
		rest := src[open+4:]
		close := strings.Index(rest, "?>")
		if close < 0 {
			return nil, errors.New("fscript: unterminated <?fs block")
		}
		block := rest[:close]
		stmts, err := parseScript(block)
		if err != nil {
			return nil, err
		}
		p.segments = append(p.segments, Segment{Script: stmts})
		src = rest[close+2:]
	}
}

// Env carries a page execution's variables in two parallel slices with
// linear-scan lookup — pages have a handful of variables, so the scan
// beats a map and, reused across requests (Reset keeps capacity), costs
// zero allocations where the old map[string]Value cost one per request.
// The zero value is ready to use; it is not safe for concurrent use.
type Env struct {
	// StepLimit, when > 0, overrides MaxSteps for this execution (the
	// fuzz harness runs hostile scripts under a small budget).
	StepLimit int64

	names []string
	vals  []Value
	out   []byte
	steps int64
	limit int64
}

// Reset clears the variables, keeping their storage for reuse.
func (e *Env) Reset() {
	e.names = e.names[:0]
	e.vals = e.vals[:0]
}

// Set binds a variable, replacing any existing binding.
func (e *Env) Set(name string, v Value) {
	for i, n := range e.names {
		if n == name {
			e.vals[i] = v
			return
		}
	}
	e.names = append(e.names, name)
	e.vals = append(e.vals, v)
}

// SetInt binds an integer variable.
func (e *Env) SetInt(name string, v int64) { e.Set(name, IntVal(v)) }

// SetStr binds a string variable.
func (e *Env) SetStr(name, s string) { e.Set(name, StrVal(s)) }

// Get looks a variable up.
func (e *Env) Get(name string) (Value, bool) {
	for i, n := range e.names {
		if n == name {
			return e.vals[i], true
		}
	}
	return Value{}, false
}

// GetInt looks an integer variable up; ok is false when the variable is
// missing or holds a string. Compiled pages use it to validate their
// inputs before committing to the native path.
func (e *Env) GetInt(name string) (int64, bool) {
	v, ok := e.Get(name)
	if !ok || v.IsStr {
		return 0, false
	}
	return v.Int, true
}

// Limit resolves the effective step budget for one execution.
func (e *Env) Limit() int64 {
	if e.StepLimit > 0 {
		return e.StepLimit
	}
	return MaxSteps
}

// Execute runs the page with the given variables, returning the rendered
// output. It is the map-keyed convenience wrapper around ExecuteInto.
func (p *Page) Execute(vars map[string]Value) (string, error) {
	var env Env
	for k, v := range vars {
		env.Set(k, v)
	}
	out, err := p.ExecuteInto(&env, nil)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// ExecuteInto interprets the page with env's variables, appending the
// rendered output to out and returning the extended slice. The env is
// mutated (scripts assign variables into it); Reset it before reuse. On
// error the returned slice's extra content is meaningless and must be
// discarded.
func (p *Page) ExecuteInto(env *Env, out []byte) ([]byte, error) {
	env.out = out
	env.steps = 0
	env.limit = env.Limit()
	for i := range p.segments {
		seg := &p.segments[i]
		if seg.Script == nil {
			env.out = append(env.out, seg.Literal...)
			continue
		}
		if err := execBlock(env, seg.Script); err != nil {
			out, env.out = env.out, nil
			return out, err
		}
	}
	out, env.out = env.out, nil
	return out, nil
}

func (e *Env) step() error {
	e.steps++
	if e.steps > e.limit {
		return ErrStepLimit
	}
	return nil
}

// --- statements -----------------------------------------------------------

// Stmt is one parsed statement. The concrete types (AssignStmt, EchoStmt,
// ForStmt, IfStmt) are exported for the compiler backend; execution stays
// internal to the interpreter.
type Stmt interface{ exec(e *Env) error }

// AssignStmt is `name = expr;`.
type AssignStmt struct {
	Name string
	X    Expr
}

func (s *AssignStmt) exec(e *Env) error {
	if err := e.step(); err != nil {
		return err
	}
	v, err := s.X.eval(e)
	if err != nil {
		return err
	}
	e.Set(s.Name, v)
	return nil
}

// EchoStmt is `echo expr;`.
type EchoStmt struct{ X Expr }

func (s *EchoStmt) exec(e *Env) error {
	if err := e.step(); err != nil {
		return err
	}
	v, err := s.X.eval(e)
	if err != nil {
		return err
	}
	e.out = v.appendText(e.out)
	return nil
}

// ForStmt is `for name = from to to { body }` (inclusive integer bounds).
type ForStmt struct {
	Name     string
	From, To Expr
	Body     []Stmt
}

func (s *ForStmt) exec(e *Env) error {
	from, err := s.From.eval(e)
	if err != nil {
		return err
	}
	to, err := s.To.eval(e)
	if err != nil {
		return err
	}
	if from.IsStr || to.IsStr {
		return errors.New("fscript: for bounds must be integers")
	}
	for i := from.Int; i <= to.Int; i++ {
		if err := e.step(); err != nil {
			return err
		}
		e.Set(s.Name, IntVal(i))
		if err := execBlock(e, s.Body); err != nil {
			return err
		}
	}
	return nil
}

// IfStmt is `if cond { then } else { else }`.
type IfStmt struct {
	Cond       Expr
	Then, Else []Stmt
}

func (s *IfStmt) exec(e *Env) error {
	if err := e.step(); err != nil {
		return err
	}
	c, err := s.Cond.eval(e)
	if err != nil {
		return err
	}
	if c.truthy() {
		return execBlock(e, s.Then)
	}
	return execBlock(e, s.Else)
}

func execBlock(e *Env, stmts []Stmt) error {
	for _, s := range stmts {
		if err := s.exec(e); err != nil {
			return err
		}
	}
	return nil
}

// --- expressions -----------------------------------------------------------

// Expr is one parsed expression. The concrete types (Lit, Var, Bin) are
// exported for the compiler backend.
type Expr interface{ eval(e *Env) (Value, error) }

// Lit is a literal value.
type Lit struct{ V Value }

func (x *Lit) eval(*Env) (Value, error) { return x.V, nil }

// Var is a variable reference.
type Var struct{ Name string }

func (x *Var) eval(e *Env) (Value, error) {
	v, ok := e.Get(x.Name)
	if !ok {
		return Value{}, fmt.Errorf("fscript: undefined variable %q", x.Name)
	}
	return v, nil
}

// Bin is a binary operation.
type Bin struct {
	Op   string
	L, R Expr
}

func (x *Bin) eval(e *Env) (Value, error) {
	if err := e.step(); err != nil {
		return Value{}, err
	}
	l, err := x.L.eval(e)
	if err != nil {
		return Value{}, err
	}
	r, err := x.R.eval(e)
	if err != nil {
		return Value{}, err
	}
	// String concatenation and comparison.
	if l.IsStr || r.IsStr {
		switch x.Op {
		case "+":
			return StrVal(l.text() + r.text()), nil
		case "==":
			return boolVal(l.text() == r.text()), nil
		case "!=":
			return boolVal(l.text() != r.text()), nil
		default:
			return Value{}, fmt.Errorf("fscript: operator %q not defined on strings", x.Op)
		}
	}
	switch x.Op {
	case "+":
		return IntVal(l.Int + r.Int), nil
	case "-":
		return IntVal(l.Int - r.Int), nil
	case "*":
		return IntVal(l.Int * r.Int), nil
	case "/":
		if r.Int == 0 {
			return Value{}, ErrDivZero
		}
		return IntVal(l.Int / r.Int), nil
	case "%":
		if r.Int == 0 {
			return Value{}, ErrModZero
		}
		return IntVal(l.Int % r.Int), nil
	case "<":
		return boolVal(l.Int < r.Int), nil
	case ">":
		return boolVal(l.Int > r.Int), nil
	case "<=":
		return boolVal(l.Int <= r.Int), nil
	case ">=":
		return boolVal(l.Int >= r.Int), nil
	case "==":
		return boolVal(l.Int == r.Int), nil
	case "!=":
		return boolVal(l.Int != r.Int), nil
	}
	return Value{}, fmt.Errorf("fscript: unknown operator %q", x.Op)
}

// Btoi is the compiled form of a comparison result: FScript comparisons
// yield the integers 1 and 0, so generated code converts Go booleans
// with it when a comparison nests inside arithmetic.
func Btoi(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// --- script parser ----------------------------------------------------------

type parser struct {
	toks []stok
	pos  int
}

type stok struct {
	kind string // "ident", "int", "str", or the punctuation itself
	lit  string
}

func parseScript(src string) ([]Stmt, error) {
	toks, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at("") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func scan(src string) ([]stok, error) {
	var toks []stok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, errors.New("fscript: unterminated string literal")
			}
			toks = append(toks, stok{kind: "str", lit: src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, stok{kind: "int", lit: src[i:j]})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, stok{kind: "ident", lit: src[i:j]})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, stok{kind: two, lit: two})
				i += 2
				continue
			}
			switch c {
			case '=', ';', '{', '}', '(', ')', '+', '-', '*', '/', '%', '<', '>':
				toks = append(toks, stok{kind: string(c), lit: string(c)})
				i++
			default:
				return nil, fmt.Errorf("fscript: unexpected character %q", c)
			}
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentByte(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (p *parser) at(kind string) bool {
	if p.pos >= len(p.toks) {
		return kind == ""
	}
	return p.toks[p.pos].kind == kind
}

func (p *parser) atIdent(lit string) bool {
	return p.pos < len(p.toks) && p.toks[p.pos].kind == "ident" && p.toks[p.pos].lit == lit
}

func (p *parser) take() stok {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) expect(kind string) (stok, error) {
	if !p.at(kind) {
		got := "end of script"
		if p.pos < len(p.toks) {
			got = fmt.Sprintf("%q", p.toks[p.pos].lit)
		}
		return stok{}, fmt.Errorf("fscript: expected %q, found %s", kind, got)
	}
	return p.take(), nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.atIdent("echo"):
		p.take()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &EchoStmt{X: e}, nil

	case p.atIdent("for"):
		p.take()
		name, err := p.expect("ident")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		from, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.atIdent("to") {
			return nil, errors.New("fscript: expected 'to' in for statement")
		}
		p.take()
		to, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Name: name.lit, From: from, To: to, Body: body}, nil

	case p.atIdent("if"):
		p.take()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.atIdent("else") {
			p.take()
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil

	case p.at("ident"):
		name := p.take()
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.lit, X: e}, nil
	}
	return nil, errors.New("fscript: expected statement")
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at("}") {
		if p.at("") {
			return nil, errors.New("fscript: unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.take()
	return stmts, nil
}

// expr parses comparison-level precedence.
func (p *parser) expr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		for _, k := range []string{"==", "!=", "<=", ">=", "<", ">"} {
			if p.at(k) {
				op = k
				break
			}
		}
		if op == "" {
			return l, nil
		}
		p.take()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at("+") || p.at("-") {
		op := p.take().kind
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at("*") || p.at("/") || p.at("%") {
		op := p.take().kind
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.at("int"):
		t := p.take()
		v, err := strconv.ParseInt(t.lit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fscript: bad integer %q", t.lit)
		}
		return &Lit{V: IntVal(v)}, nil
	case p.at("str"):
		return &Lit{V: StrVal(p.take().lit)}, nil
	case p.at("ident"):
		return &Var{Name: p.take().lit}, nil
	case p.at("("):
		p.take()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errors.New("fscript: expected expression")
}
