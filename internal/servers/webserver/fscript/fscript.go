// Package fscript is a small server-side template language standing in
// for the PHP interpreter behind the paper's web server (§4.2). A page is
// literal HTML with embedded <?fs ... ?> script blocks; scripts have
// integer and string variables, arithmetic, conditionals, bounded loops,
// and echo. Like the PHP layer in the paper, its role in the benchmark is
// to burn per-request CPU inside the server's request path.
//
// Example:
//
//	<html><?fs
//	  total = 0;
//	  for i = 1 to n { total = total + i*i; }
//	  echo "sum: "; echo total;
//	?></html>
package fscript

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxSteps bounds script execution; exceeding it aborts the page (a
// server must not let one request loop forever).
const MaxSteps = 10_000_000

// Value is an FScript value: int64 or string.
type Value struct {
	Str   string
	Int   int64
	IsStr bool
}

// IntVal wraps an integer.
func IntVal(v int64) Value { return Value{Int: v} }

// StrVal wraps a string.
func StrVal(s string) Value { return Value{Str: s, IsStr: true} }

func (v Value) text() string {
	if v.IsStr {
		return v.Str
	}
	return strconv.FormatInt(v.Int, 10)
}

func (v Value) truthy() bool {
	if v.IsStr {
		return v.Str != ""
	}
	return v.Int != 0
}

// Page is a parsed template ready for repeated execution.
type Page struct {
	segments []segment
}

type segment struct {
	literal string // emitted verbatim when script is nil
	script  []stmt // parsed block
}

// Parse splits the template into literal and script segments and parses
// every script block.
func Parse(src string) (*Page, error) {
	p := &Page{}
	for {
		open := strings.Index(src, "<?fs")
		if open < 0 {
			if src != "" {
				p.segments = append(p.segments, segment{literal: src})
			}
			return p, nil
		}
		if open > 0 {
			p.segments = append(p.segments, segment{literal: src[:open]})
		}
		rest := src[open+4:]
		close := strings.Index(rest, "?>")
		if close < 0 {
			return nil, errors.New("fscript: unterminated <?fs block")
		}
		block := rest[:close]
		stmts, err := parseScript(block)
		if err != nil {
			return nil, err
		}
		p.segments = append(p.segments, segment{script: stmts})
		src = rest[close+2:]
	}
}

// Execute runs the page with the given variables, returning the rendered
// output.
func (p *Page) Execute(vars map[string]Value) (string, error) {
	env := &env{vars: make(map[string]Value, len(vars))}
	for k, v := range vars {
		env.vars[k] = v
	}
	var out strings.Builder
	env.out = &out
	for _, seg := range p.segments {
		if seg.script == nil {
			out.WriteString(seg.literal)
			continue
		}
		if err := execBlock(env, seg.script); err != nil {
			return "", err
		}
	}
	return out.String(), nil
}

type env struct {
	vars  map[string]Value
	out   *strings.Builder
	steps int
}

func (e *env) step() error {
	e.steps++
	if e.steps > MaxSteps {
		return errors.New("fscript: step limit exceeded")
	}
	return nil
}

// --- statements -----------------------------------------------------------

type stmt interface{ exec(e *env) error }

type assignStmt struct {
	name string
	expr expr
}

func (s *assignStmt) exec(e *env) error {
	if err := e.step(); err != nil {
		return err
	}
	v, err := s.expr.eval(e)
	if err != nil {
		return err
	}
	e.vars[s.name] = v
	return nil
}

type echoStmt struct{ expr expr }

func (s *echoStmt) exec(e *env) error {
	if err := e.step(); err != nil {
		return err
	}
	v, err := s.expr.eval(e)
	if err != nil {
		return err
	}
	e.out.WriteString(v.text())
	return nil
}

type forStmt struct {
	name     string
	from, to expr
	body     []stmt
}

func (s *forStmt) exec(e *env) error {
	from, err := s.from.eval(e)
	if err != nil {
		return err
	}
	to, err := s.to.eval(e)
	if err != nil {
		return err
	}
	if from.IsStr || to.IsStr {
		return errors.New("fscript: for bounds must be integers")
	}
	for i := from.Int; i <= to.Int; i++ {
		if err := e.step(); err != nil {
			return err
		}
		e.vars[s.name] = IntVal(i)
		if err := execBlock(e, s.body); err != nil {
			return err
		}
	}
	return nil
}

type ifStmt struct {
	cond        expr
	then, else_ []stmt
}

func (s *ifStmt) exec(e *env) error {
	if err := e.step(); err != nil {
		return err
	}
	c, err := s.cond.eval(e)
	if err != nil {
		return err
	}
	if c.truthy() {
		return execBlock(e, s.then)
	}
	return execBlock(e, s.else_)
}

func execBlock(e *env, stmts []stmt) error {
	for _, s := range stmts {
		if err := s.exec(e); err != nil {
			return err
		}
	}
	return nil
}

// --- expressions -----------------------------------------------------------

type expr interface{ eval(e *env) (Value, error) }

type litExpr struct{ v Value }

func (x *litExpr) eval(*env) (Value, error) { return x.v, nil }

type varExpr struct{ name string }

func (x *varExpr) eval(e *env) (Value, error) {
	v, ok := e.vars[x.name]
	if !ok {
		return Value{}, fmt.Errorf("fscript: undefined variable %q", x.name)
	}
	return v, nil
}

type binExpr struct {
	op   string
	l, r expr
}

func (x *binExpr) eval(e *env) (Value, error) {
	if err := e.step(); err != nil {
		return Value{}, err
	}
	l, err := x.l.eval(e)
	if err != nil {
		return Value{}, err
	}
	r, err := x.r.eval(e)
	if err != nil {
		return Value{}, err
	}
	// String concatenation and comparison.
	if l.IsStr || r.IsStr {
		switch x.op {
		case "+":
			return StrVal(l.text() + r.text()), nil
		case "==":
			return boolVal(l.text() == r.text()), nil
		case "!=":
			return boolVal(l.text() != r.text()), nil
		default:
			return Value{}, fmt.Errorf("fscript: operator %q not defined on strings", x.op)
		}
	}
	switch x.op {
	case "+":
		return IntVal(l.Int + r.Int), nil
	case "-":
		return IntVal(l.Int - r.Int), nil
	case "*":
		return IntVal(l.Int * r.Int), nil
	case "/":
		if r.Int == 0 {
			return Value{}, errors.New("fscript: division by zero")
		}
		return IntVal(l.Int / r.Int), nil
	case "%":
		if r.Int == 0 {
			return Value{}, errors.New("fscript: modulo by zero")
		}
		return IntVal(l.Int % r.Int), nil
	case "<":
		return boolVal(l.Int < r.Int), nil
	case ">":
		return boolVal(l.Int > r.Int), nil
	case "<=":
		return boolVal(l.Int <= r.Int), nil
	case ">=":
		return boolVal(l.Int >= r.Int), nil
	case "==":
		return boolVal(l.Int == r.Int), nil
	case "!=":
		return boolVal(l.Int != r.Int), nil
	}
	return Value{}, fmt.Errorf("fscript: unknown operator %q", x.op)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// --- script parser ----------------------------------------------------------

type parser struct {
	toks []stok
	pos  int
}

type stok struct {
	kind string // "ident", "int", "str", or the punctuation itself
	lit  string
}

func parseScript(src string) ([]stmt, error) {
	toks, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at("") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func scan(src string) ([]stok, error) {
	var toks []stok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, errors.New("fscript: unterminated string literal")
			}
			toks = append(toks, stok{kind: "str", lit: src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, stok{kind: "int", lit: src[i:j]})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, stok{kind: "ident", lit: src[i:j]})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, stok{kind: two, lit: two})
				i += 2
				continue
			}
			switch c {
			case '=', ';', '{', '}', '(', ')', '+', '-', '*', '/', '%', '<', '>':
				toks = append(toks, stok{kind: string(c), lit: string(c)})
				i++
			default:
				return nil, fmt.Errorf("fscript: unexpected character %q", c)
			}
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentByte(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (p *parser) at(kind string) bool {
	if p.pos >= len(p.toks) {
		return kind == ""
	}
	return p.toks[p.pos].kind == kind
}

func (p *parser) atIdent(lit string) bool {
	return p.pos < len(p.toks) && p.toks[p.pos].kind == "ident" && p.toks[p.pos].lit == lit
}

func (p *parser) take() stok {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) expect(kind string) (stok, error) {
	if !p.at(kind) {
		got := "end of script"
		if p.pos < len(p.toks) {
			got = fmt.Sprintf("%q", p.toks[p.pos].lit)
		}
		return stok{}, fmt.Errorf("fscript: expected %q, found %s", kind, got)
	}
	return p.take(), nil
}

func (p *parser) stmt() (stmt, error) {
	switch {
	case p.atIdent("echo"):
		p.take()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &echoStmt{expr: e}, nil

	case p.atIdent("for"):
		p.take()
		name, err := p.expect("ident")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		from, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.atIdent("to") {
			return nil, errors.New("fscript: expected 'to' in for statement")
		}
		p.take()
		to, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &forStmt{name: name.lit, from: from, to: to, body: body}, nil

	case p.atIdent("if"):
		p.take()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.atIdent("else") {
			p.take()
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &ifStmt{cond: cond, then: then, else_: els}, nil

	case p.at("ident"):
		name := p.take()
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &assignStmt{name: name.lit, expr: e}, nil
	}
	return nil, errors.New("fscript: expected statement")
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.at("}") {
		if p.at("") {
			return nil, errors.New("fscript: unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.take()
	return stmts, nil
}

// expr parses comparison-level precedence.
func (p *parser) expr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		for _, k := range []string{"==", "!=", "<=", ">=", "<", ">"} {
			if p.at(k) {
				op = k
				break
			}
		}
		if op == "" {
			return l, nil
		}
		p.take()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at("+") || p.at("-") {
		op := p.take().kind
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at("*") || p.at("/") || p.at("%") {
		op := p.take().kind
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) primary() (expr, error) {
	switch {
	case p.at("int"):
		t := p.take()
		v, err := strconv.ParseInt(t.lit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fscript: bad integer %q", t.lit)
		}
		return &litExpr{v: IntVal(v)}, nil
	case p.at("str"):
		return &litExpr{v: StrVal(p.take().lit)}, nil
	case p.at("ident"):
		return &varExpr{name: p.take().lit}, nil
	case p.at("("):
		p.take()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errors.New("fscript: expected expression")
}
