package bittorrent

import (
	"net"
	"sync"
	"sync/atomic"

	"github.com/flux-lang/flux/internal/torrent"
)

// Peer is one connected remote peer. Wire writes are serialized by a
// per-peer mutex because several flows (piece responses, haves,
// keep-alives, choke updates) may target the same peer concurrently;
// per-peer protocol state is guarded by the Flux session-scoped
// "peerstate" constraint (§2.5.1), not by Go locking — each peer is a
// session.
type Peer struct {
	conn net.Conn
	id   [20]byte
	// session is the Flux session identifier for this peer.
	session uint64

	// Protocol state guarded by the peerstate(session) constraint.
	bitfield      torrent.Bitfield
	interested    bool // they are interested in us
	choked        bool // we choke them
	theyChokeUs   bool
	pendingBlocks int

	writeMu sync.Mutex
	closed  atomic.Bool

	bytesOut atomic.Uint64
	bytesIn  atomic.Uint64
}

// send writes one message, serialized per peer.
func (p *Peer) send(m *Message) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	if p.closed.Load() {
		return net.ErrClosed
	}
	if err := WriteMessage(p.conn, m); err != nil {
		return err
	}
	if m.ID == MsgPiece {
		p.bytesOut.Add(uint64(len(m.Payload)))
	}
	return nil
}

// close shuts the connection down once.
func (p *Peer) close() {
	if p.closed.CompareAndSwap(false, true) {
		p.conn.Close()
	}
}

// rawFrame is one length-delimited frame read by a peer's pump, before
// the ReadMessage node parses it.
type rawFrame struct {
	body []byte // nil for keep-alive
}

// inboxItem is what the readiness substrate delivers to the Poll source:
// a frame from a peer, or the peer's terminal error.
type inboxItem struct {
	peer *Peer
	raw  *rawFrame
	err  error // non-nil: the peer's connection is done
}

// pollToken is the Poll source's output: either one ready item or an
// empty poll (the select timeout fired with nothing ready — the paper's
// most frequently executed BitTorrent path ends in ERROR exactly here).
type pollToken struct {
	item     *inboxItem
	numPeers int // filled by GetClients
}

// wireMsg is the message record flowing through HandleMessage. The Poll
// source delivers it holding the raw frame; the ReadMessage node parses
// it and fills msg and kind; the dispatch predicates test kind and the
// completion flag.
type wireMsg struct {
	raw *rawFrame
	msg *Message
	// kind mirrors msg.Kind(); "closed" marks a dead peer needing
	// unregistration, "raw" an unparsed frame.
	kind string
	// completed is set by the Piece node when a block completes and
	// verifies a piece (tested by the piececomplete predicate).
	completed  bool
	pieceIndex uint32
}
