package bittorrent

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/netkit"
	"github.com/flux-lang/flux/internal/torrent"
)

// Peer is one connected remote peer. Wire writes are serialized by a
// per-peer mutex because several flows (piece responses, haves,
// keep-alives, choke updates) may target the same peer concurrently;
// per-peer protocol state is guarded by the Flux session-scoped
// "peerstate" constraint (§2.5.1), not by Go locking — each peer is a
// session. Choke/interest flags are atomics because the choke flow and
// broadcast flows read them outside the session constraint.
//
// Connection ownership: the pooled netkit.Conn has exactly one retirer.
// Once the pump goroutine starts it is the sole caller of conn.Close()
// (pool retirement happens on its read-loop exit); before the pump
// exists — handshake failures — the accept flow retires it. Everyone
// else interrupts the peer by closing the raw socket (interrupt), which
// unblocks the pump and lets it retire.
type Peer struct {
	conn *netkit.Conn  // pooled plane state; retired exactly once
	nc   net.Conn      // raw socket: safe to close/write after retirement
	br   *bufio.Reader // pooled reader: handshake + pump only, dead after retirement
	id   [20]byte
	// session is the Flux session identifier for this peer.
	session uint64

	// Protocol state guarded by the peerstate(session) constraint.
	bitfield      torrent.Bitfield
	pendingBlocks atomic.Int32

	interested  atomic.Bool // they are interested in us
	choked      atomic.Bool // we choke them
	theyChokeUs atomic.Bool

	// ready is set once the handshake and bitfield are exchanged;
	// broadcast flows (keep-alives, haves, choke updates) skip peers
	// still mid-handshake so their writes cannot interleave into the
	// handshake byte stream.
	ready atomic.Bool

	// removed latches the peer's exit from the table so the DropPeer
	// and Unregister paths (a flow kill followed by the pump's terminal
	// report) cannot double-decrement piece availability.
	removed atomic.Bool

	// rateBase is the bytesIn watermark at the last choke tick; the
	// choke flow alone reads and writes it (tit-for-tat rates are
	// deltas between ticks).
	rateBase uint64

	// writeTimeout bounds each serialized wire write; a deadline pop
	// means a dead or zero-window peer stalling mid-frame, so the
	// connection is interrupted (the stream is unrecoverable) and
	// onWriteTimeout reports the shed to the plane's ledger.
	writeTimeout   time.Duration
	onWriteTimeout func()

	writeMu sync.Mutex
	closed  atomic.Bool

	bytesOut atomic.Uint64
	bytesIn  atomic.Uint64
}

// send writes one message, serialized per peer. It targets the raw
// socket, never the pooled Conn, so late sends racing retirement fail
// with a write error instead of touching recycled state.
func (p *Peer) send(m *Message) error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	if p.closed.Load() {
		return net.ErrClosed
	}
	if p.writeTimeout > 0 {
		_ = p.nc.SetWriteDeadline(time.Now().Add(p.writeTimeout))
	}
	if err := WriteMessage(p.nc, m); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if p.onWriteTimeout != nil {
				p.onWriteTimeout()
			}
			// A frame stalled partway cannot be resumed; tear the
			// connection down so no later send interleaves into it.
			p.interrupt()
		}
		return err
	}
	if m.ID == MsgPiece {
		p.bytesOut.Add(uint64(len(m.Payload)))
	}
	return nil
}

// interrupt closes the raw socket once, unblocking the pump (which then
// retires the pooled conn and reports the close through the inbox).
func (p *Peer) interrupt() {
	if p.closed.CompareAndSwap(false, true) {
		p.nc.Close()
	}
}

// retire closes the socket and returns the pooled conn state — called
// by the conn's owner only: the pump on read-loop exit, or the accept
// flow on handshake failure.
func (p *Peer) retire() {
	p.closed.Store(true)
	p.conn.Close()
}

// rawFrame is one length-delimited frame read by a peer's pump, before
// the ReadMessage node parses it.
type rawFrame struct {
	body []byte // nil for keep-alive
}

// inboxItem is what the readiness substrate delivers to the Poll source:
// a frame from a peer, or the peer's terminal error.
type inboxItem struct {
	peer *Peer
	raw  *rawFrame
	err  error // non-nil: the peer's connection is done
}

// pollToken is the Poll source's output: either one ready item or an
// empty poll (the select timeout fired with nothing ready — the paper's
// most frequently executed BitTorrent path ends in ERROR exactly here).
type pollToken struct {
	item     *inboxItem
	numPeers int // filled by GetClients
}

// wireMsg is the message record flowing through HandleMessage. The Poll
// source delivers it holding the raw frame; the ReadMessage node parses
// it and fills msg and kind; the dispatch predicates test kind and the
// completion flag.
type wireMsg struct {
	raw *rawFrame
	msg *Message
	// kind mirrors msg.Kind(); "closed" marks a dead peer needing
	// unregistration, "raw" an unparsed frame.
	kind string
	// completed is set by the Piece node when a block completes and
	// verifies a piece (tested by the piececomplete predicate).
	completed  bool
	pieceIndex uint32
}
