package bittorrent

import (
	"net"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/runtime"
)

func waitShed(t *testing.T, fo *metrics.FlowObserver, key string, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if fo.ShedCount(key) > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no %q shed counted within %v (sheds=%d)", key, d, fo.Sheds())
}

// TestHandshakeTimeoutShed connects a peer that writes half a handshake
// and stalls: the handshake deadline must pop, the connection must be
// dropped, and the shed must be counted on the plane's observer.
func TestHandshakeTimeoutShed(t *testing.T) {
	meta, data := testTorrent(t, 128*1024)
	fo := metrics.NewFlowObserver()
	_, addr, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.ThreadPool, PoolSize: 4,
		HandshakeTimeout: 200 * time.Millisecond,
		Observer:         fo,
	})
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// 19 + "BitTorrent protocol" + nothing else: a half-written handshake.
	if _, err := nc.Write([]byte("\x13BitTorrent proto")); err != nil {
		t.Fatal(err)
	}

	waitShed(t, fo, "bittorrent/handshake-timeout", 5*time.Second)
}

// TestIdlePeerShed registers a peer that completes the handshake and
// then goes silent — a dead keep-alive peer. The idle deadline must reap
// it and count the shed.
func TestIdlePeerShed(t *testing.T) {
	meta, data := testTorrent(t, 128*1024)
	fo := metrics.NewFlowObserver()
	s, addr, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.ThreadPool, PoolSize: 4,
		IdleTimeout: 300 * time.Millisecond,
		Observer:    fo,
	})
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var peerID [20]byte
	copy(peerID[:], "-TEST01-idlepeer0000")
	if err := WriteHandshake(nc, meta.InfoHash, peerID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadHandshake(nc); err != nil {
		t.Fatal(err)
	}
	// Fully registered (the server sends its bitfield), then silence.
	if _, err := readMessageDeadline(nc, 5*time.Second); err != nil {
		t.Fatalf("bitfield: %v", err)
	}

	waitShed(t, fo, "bittorrent/idle", 5*time.Second)
	if got := s.MsgCounts()["bitfield"]; got != 0 {
		t.Errorf("server counted %d bitfield messages from a silent peer", got)
	}
}
