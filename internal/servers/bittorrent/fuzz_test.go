package bittorrent

import (
	"bytes"
	"testing"
)

// FuzzParseMessageBody hammers the frame-body decoder with arbitrary
// bytes: it must never panic, and anything it accepts must survive an
// encode/decode round trip unchanged.
func FuzzParseMessageBody(f *testing.F) {
	f.Add([]byte{})                                // keep-alive
	f.Add([]byte{MsgChoke})                        // bare choke
	f.Add([]byte{MsgHave, 0, 0, 0, 7})             // have(7)
	f.Add([]byte{MsgBitfield, 0xFF, 0x80})         // bitfield
	f.Add(append([]byte{MsgRequest}, make([]byte, 12)...))
	f.Add(append([]byte{MsgPiece, 0, 0, 0, 1, 0, 0, 0x40, 0}, []byte("block data")...))
	f.Add([]byte{MsgCancel, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0x40, 0})
	f.Add([]byte{9, 1, 2, 3}) // unknown id

	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := ParseMessageBody(body)
		if err != nil {
			return
		}
		if len(body) > maxFrame {
			// Valid body, but too large to re-frame within the read limit.
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("accepted message failed to encode: %v (%+v)", err, m)
		}
		m2, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("round trip failed to decode: %v (%+v)", err, m)
		}
		if m.ID != m2.ID || m.Index != m2.Index || m.Begin != m2.Begin ||
			m.Length != m2.Length || !bytes.Equal(m.Payload, m2.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", m, m2)
		}
	})
}

// FuzzReadHandshake hammers the handshake parser: no panics, and any
// accepted handshake must re-encode to something it accepts again with
// the same identity.
func FuzzReadHandshake(f *testing.F) {
	valid := append([]byte{19}, []byte("BitTorrent protocol")...)
	valid = append(valid, make([]byte, 8)...)
	valid = append(valid, bytes.Repeat([]byte{'h'}, 20)...)
	valid = append(valid, bytes.Repeat([]byte{'p'}, 20)...)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{19})
	f.Add(append([]byte{19}, []byte("BitTorrent protocoX")...))
	f.Add(valid[:40])

	f.Fuzz(func(t *testing.T, data []byte) {
		infoHash, peerID, err := ReadHandshake(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteHandshake(&buf, infoHash, peerID); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		ih2, pid2, err := ReadHandshake(&buf)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if ih2 != infoHash || pid2 != peerID {
			t.Fatal("handshake identity changed across round trip")
		}
	})
}
