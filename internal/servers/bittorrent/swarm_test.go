package bittorrent

import (
	"context"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/runtime"
)

// TestInjectAdmissionAllEngines drives real downloads through the
// connection plane on every engine: peers must be admitted through
// Server.Inject (the plane's only path into the graph) and complete.
// Run under -race in CI.
func TestInjectAdmissionAllEngines(t *testing.T) {
	engines := []struct {
		name string
		kind runtime.EngineKind
	}{
		{"thread", runtime.ThreadPerFlow},
		{"threadpool", runtime.ThreadPool},
		{"event", runtime.EventDriven},
		{"steal", runtime.WorkStealing},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			meta, data := testTorrent(t, 128*1024) // 2 pieces
			s, addr, stop := startSeeder(t, Config{
				Meta: meta, Content: data,
				Engine: eng.kind, PoolSize: 8,
			})
			defer stop()

			res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
				Addr: addr, Meta: meta,
				Clients:   2,
				Duration:  20 * time.Second,
				Seed:      int64(eng.kind) + 1,
				StopAfter: 2,
			})
			if res.Completions < 2 {
				t.Fatalf("completions = %d, want >= 2 (%+v)", res.Completions, res)
			}
			ps := s.PlaneStats()
			if ps.Admitted < 2 {
				t.Errorf("plane admitted %d conns, want >= 2", ps.Admitted)
			}
			if got := s.MsgCounts()["request"]; got == 0 {
				t.Error("no request messages counted")
			}
		})
	}
}

// TestSwarmAgainstFluxSeeder is the integration smoke the benchmark
// sweep scales up: a looping swarm of real peers downloads from the Flux
// seeder (tit-for-tat enabled) and from each other.
func TestSwarmAgainstFluxSeeder(t *testing.T) {
	meta, data := testTorrent(t, 256*1024) // 4 pieces
	s, addr, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.WorkStealing, PoolSize: 8,
		MaxUnchoked:   8,
		ChokeInterval: 100 * time.Millisecond,
	})
	defer stop()

	res, err := loadgen.RunSwarm(context.Background(), loadgen.SwarmConfig{
		SeedAddr:      addr,
		Meta:          meta,
		Peers:         3,
		Neighbors:     2,
		Duration:      30 * time.Second,
		ChokeInterval: 50 * time.Millisecond,
		Seed:          42,
		StopAfter:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions < 3 {
		t.Fatalf("swarm completions = %d, want >= 3 (%v)", res.Completions, res)
	}
	if res.PieceLatency.Count == 0 {
		t.Error("no piece latencies recorded")
	}
	if res.Msgs["piece"] == 0 || res.Msgs["unchoke"] == 0 {
		t.Errorf("missing wire traffic: %v", res.Msgs)
	}
	if got := s.PlaneStats().Admitted; got < 3 {
		t.Errorf("plane admitted %d conns, want >= 3", got)
	}
}
