package bittorrent

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/flux-lang/flux/internal/bencode"
)

// Tracker is a minimal HTTP BitTorrent tracker: peers announce
// themselves with GET /announce and receive the current swarm. It backs
// the peer's TrackerTimer flow (Figure 7's CheckinWithTracker ->
// SendRequestToTracker -> GetTrackerResponse chain).
type Tracker struct {
	ln       net.Listener
	srv      *http.Server
	interval int64

	mu     sync.Mutex
	swarms map[string]map[string]trackedPeer // info_hash -> addr -> peer
}

type trackedPeer struct {
	id       string
	host     string
	port     int
	lastSeen time.Time
}

// NewTracker binds a tracker to addr ("127.0.0.1:0" for ephemeral).
func NewTracker(addr string) (*Tracker, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		ln:       ln,
		interval: 10,
		swarms:   make(map[string]map[string]trackedPeer),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/announce", t.announce)
	t.srv = &http.Server{Handler: mux}
	return t, nil
}

// AnnounceURL returns the tracker's announce endpoint.
func (t *Tracker) AnnounceURL() string {
	return "http://" + t.ln.Addr().String() + "/announce"
}

// Serve blocks until the context is cancelled.
func (t *Tracker) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = t.srv.Shutdown(shutdownCtx)
	}()
	err := t.srv.Serve(t.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// SwarmSize reports the number of registered peers for an info hash.
func (t *Tracker) SwarmSize(infoHash [20]byte) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.swarms[string(infoHash[:])])
}

// announce handles one GET /announce?info_hash=..&peer_id=..&port=..
func (t *Tracker) announce(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	infoHash := q.Get("info_hash")
	peerID := q.Get("peer_id")
	port, err := strconv.Atoi(q.Get("port"))
	if len(infoHash) != 20 || len(peerID) != 20 || err != nil || port <= 0 || port > 65535 {
		writeBencode(w, map[string]any{"failure reason": "malformed announce"})
		return
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = "127.0.0.1"
	}
	key := fmt.Sprintf("%s:%d", host, port)

	t.mu.Lock()
	swarm, ok := t.swarms[infoHash]
	if !ok {
		swarm = make(map[string]trackedPeer)
		t.swarms[infoHash] = swarm
	}
	swarm[key] = trackedPeer{id: peerID, host: host, port: port, lastSeen: time.Now()}
	peers := make([]any, 0, len(swarm))
	for _, p := range swarm {
		peers = append(peers, map[string]any{
			"peer id": p.id,
			"ip":      p.host,
			"port":    int64(p.port),
		})
	}
	t.mu.Unlock()

	writeBencode(w, map[string]any{
		"interval": t.interval,
		"peers":    peers,
	})
}

func writeBencode(w http.ResponseWriter, v map[string]any) {
	data, err := bencode.Encode(v)
	if err != nil {
		http.Error(w, "encode failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write(data)
}
