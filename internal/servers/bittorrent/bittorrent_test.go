package bittorrent

import (
	"bytes"
	"context"

	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/profile"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/torrent"
)

func testTorrent(t *testing.T, size int) (*torrent.MetaInfo, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, size)
	rng.Read(data)
	meta, err := torrent.New("bench.bin", "", data, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	return meta, data
}

func startSeeder(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	stop := func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Error("peer did not stop")
		}
	}
	return s, s.Addr(), stop
}

func TestSingleClientDownloads(t *testing.T) {
	meta, data := testTorrent(t, 512*1024) // 8 pieces
	_, addr, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.ThreadPool, PoolSize: 8,
	})
	defer stop()

	res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
		Addr: addr, Meta: meta,
		Clients:   1,
		Duration:  10 * time.Second,
		Seed:      1,
		StopAfter: 1,
	})
	if res.Completions == 0 {
		t.Fatalf("no completed download: %+v", res)
	}
	if res.Pieces < uint64(meta.NumPieces()) {
		t.Errorf("pieces = %d, want >= %d", res.Pieces, meta.NumPieces())
	}
}

func TestMultipleConcurrentClients(t *testing.T) {
	meta, data := testTorrent(t, 256*1024)
	s, addr, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.ThreadPool, PoolSize: 16,
	})
	defer stop()

	res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
		Addr: addr, Meta: meta,
		Clients:   4,
		Duration:  15 * time.Second,
		Seed:      2,
		StopAfter: 4,
	})
	if res.Completions < 4 {
		t.Fatalf("completions = %d, want >= 4: %+v", res.Completions, res)
	}
	if s.BytesServed() == 0 {
		t.Error("seeder reports zero bytes served")
	}
}

func TestAllEnginesSeed(t *testing.T) {
	meta, data := testTorrent(t, 128*1024)
	for _, kind := range []runtime.EngineKind{runtime.ThreadPerFlow, runtime.ThreadPool, runtime.EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			_, addr, stop := startSeeder(t, Config{
				Meta: meta, Content: data,
				Engine: kind, PoolSize: 8,
				SourceTimeout: time.Millisecond,
			})
			defer stop()
			res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
				Addr: addr, Meta: meta,
				Clients:   2,
				Duration:  10 * time.Second,
				Seed:      3,
				StopAfter: 1,
			})
			if res.Completions == 0 {
				t.Fatalf("no completions: %+v", res)
			}
		})
	}
}

func TestDownloadedContentVerifies(t *testing.T) {
	meta, data := testTorrent(t, 200_000) // odd size: short last piece
	_, addr, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.ThreadPool, PoolSize: 8,
	})
	defer stop()

	// Use the Flux peer itself as the leecher: a second peer connects
	// out and downloads (exercising the Piece/CompletePiece flow).
	leecher, err := New(Config{Meta: meta, Engine: runtime.ThreadPool, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	leechDone := make(chan struct{})
	go func() {
		defer close(leechDone)
		_ = leecher.Run(ctx)
	}()
	if err := leecher.ConnectTo(addr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for !leecher.Store().Complete() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !leecher.Store().Complete() {
		t.Fatal("leecher did not complete")
	}
	if !bytes.Equal(leecher.Store().Bytes(), data) {
		t.Error("downloaded content differs")
	}
	cancel()
	<-leechDone
}

func TestEmptyPollErrorPathDominatesWhenIdle(t *testing.T) {
	meta, data := testTorrent(t, 64*1024)
	prof := profile.New()
	s, _, stop := startSeeder(t, Config{
		Meta: meta, Content: data,
		Engine: runtime.ThreadPool, PoolSize: 4,
		PollInterval: 200 * time.Microsecond,
		Profiler:     prof,
	})
	time.Sleep(300 * time.Millisecond) // idle server: only empty polls
	stop()

	g := s.Program().Graphs["Poll"]
	rows := prof.HotPaths(g, profile.ByCount, 1)
	if len(rows) == 0 {
		t.Fatal("no poll paths recorded")
	}
	if !strings.Contains(rows[0].Label, "ERROR") {
		t.Errorf("most frequent idle path should end in ERROR, got %q", rows[0].Label)
	}
	if !strings.Contains(rows[0].Label, "CheckSockets") {
		t.Errorf("idle path should pass CheckSockets: %q", rows[0].Label)
	}
}

func TestTrackerAnnounceAndDiscovery(t *testing.T) {
	meta, data := testTorrent(t, 64*1024)
	tracker, err := NewTracker("")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trackerDone := make(chan struct{})
	go func() {
		defer close(trackerDone)
		_ = tracker.Serve(ctx)
	}()

	// Seeder announces itself.
	_, _, stopSeeder := startSeeder(t, Config{
		Meta: meta, Content: data,
		AnnounceURL:     tracker.AnnounceURL(),
		TrackerInterval: 50 * time.Millisecond,
		Engine:          runtime.ThreadPool, PoolSize: 8,
	})
	defer stopSeeder()

	deadline := time.Now().Add(5 * time.Second)
	for tracker.SwarmSize(meta.InfoHash) == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if tracker.SwarmSize(meta.InfoHash) == 0 {
		t.Fatal("seeder never announced")
	}

	// Leecher discovers the seeder via the tracker and completes.
	leecher, err := New(Config{
		Meta:            meta,
		AnnounceURL:     tracker.AnnounceURL(),
		TrackerInterval: 50 * time.Millisecond,
		Engine:          runtime.ThreadPool, PoolSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	leechDone := make(chan struct{})
	go func() {
		defer close(leechDone)
		_ = leecher.Run(ctx)
	}()
	deadline = time.Now().Add(20 * time.Second)
	for !leecher.Store().Complete() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !leecher.Store().Complete() {
		t.Fatal("leecher did not complete via tracker discovery")
	}
	cancel()
	<-leechDone
	<-trackerDone
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []*Message{
		{ID: -1},
		{ID: MsgChoke},
		{ID: MsgUnchoke},
		{ID: MsgInterested},
		{ID: MsgNotInterested},
		{ID: MsgHave, Index: 42},
		{ID: MsgBitfield, Payload: []byte{0xA5, 0x0F}},
		{ID: MsgRequest, Index: 1, Begin: 16384, Length: 16384},
		{ID: MsgCancel, Index: 2, Begin: 0, Length: 1024},
		{ID: MsgPiece, Index: 3, Begin: 32768, Payload: []byte("block data")},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Kind(), err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Kind(), err)
		}
		if got.ID != want.ID || got.Index != want.Index || got.Begin != want.Begin ||
			got.Length != want.Length || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip %s: got %+v want %+v", want.Kind(), got, want)
		}
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var infoHash, peerID [20]byte
	copy(infoHash[:], "aaaaaaaaaaaaaaaaaaaa")
	copy(peerID[:], "bbbbbbbbbbbbbbbbbbbb")
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, infoHash, peerID); err != nil {
		t.Fatal(err)
	}
	gotHash, gotID, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != infoHash || gotID != peerID {
		t.Error("handshake round trip mismatch")
	}
}

func TestMalformedWireMessages(t *testing.T) {
	bad := [][]byte{
		{0, 0, 0, 1, 4},                // have without index
		{0, 0, 0, 2, 6, 0},             // short request
		{0, 0, 0, 3, 7, 0, 0},          // short piece
		{0, 0, 0, 1, 99},               // unknown id
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}, // oversized frame
	}
	for _, in := range bad {
		if _, err := ReadMessage(bytes.NewReader(in)); err == nil {
			t.Errorf("ReadMessage(%v) should fail", in)
		}
	}
}

// TestCorruptPieceRejectedAndRetried injects a corrupt block into a Flux
// leecher from a fake seeder: the piece must fail verification (taking
// the error path), become requestable again, and the download must still
// complete when correct data follows.
func TestCorruptPieceRejectedAndRetried(t *testing.T) {
	meta, data := testTorrent(t, 64*1024) // single piece
	leecher, err := New(Config{Meta: meta, Engine: runtime.ThreadPool, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = leecher.Run(ctx) }()
	defer func() { cancel(); <-done }()

	// Fake seeder: accept the leecher's outbound connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := leecher.ConnectTo(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(15 * time.Second))

	// Handshake both ways, then announce a full bitfield.
	if _, _, err := ReadHandshake(conn); err != nil {
		t.Fatal(err)
	}
	var fakeID [20]byte
	copy(fakeID[:], "-FAKESEEDER-00000000")
	if err := WriteHandshake(conn, meta.InfoHash, fakeID); err != nil {
		t.Fatal(err)
	}
	full := torrent.NewBitfield(meta.NumPieces())
	for i := 0; i < meta.NumPieces(); i++ {
		full.Set(i)
	}
	if err := WriteMessage(conn, &Message{ID: MsgBitfield, Payload: full}); err != nil {
		t.Fatal(err)
	}

	// Serve requests: corrupt the first block once, then serve honestly.
	// When the leecher goes quiet after the corrupt piece fails
	// verification (the flow that would have refilled its pipeline died
	// on the error path), an unchoke re-opens the request window.
	corrupted := false
	deadline := time.Now().Add(15 * time.Second)
	for !leecher.Store().Complete() && time.Now().Before(deadline) {
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		m, err := ReadMessage(conn)
		if err != nil {
			if ne, ok := err.(interface{ Timeout() bool }); ok && ne.Timeout() {
				if !leecher.Store().Complete() {
					_ = WriteMessage(conn, &Message{ID: MsgUnchoke})
				}
				continue
			}
			t.Fatalf("fake seeder read: %v", err)
		}
		if m.ID != MsgRequest {
			continue
		}
		off := int64(m.Index)*meta.PieceLength + int64(m.Begin)
		blk := append([]byte(nil), data[off:off+int64(m.Length)]...)
		if !corrupted {
			blk[0] ^= 0xFF
			corrupted = true
		}
		if err := WriteMessage(conn, &Message{ID: MsgPiece, Index: m.Index, Begin: m.Begin, Payload: blk}); err != nil {
			t.Fatalf("fake seeder write: %v", err)
		}
	}
	if !leecher.Store().Complete() {
		t.Fatalf("download did not recover from corrupt piece (errored=%d)",
			leecher.Stats().Snapshot().Errored)
	}
	if !bytes.Equal(leecher.Store().Bytes(), data) {
		t.Error("content mismatch after recovery")
	}
	if leecher.Stats().Snapshot().Errored == 0 {
		t.Error("corrupt piece never took the error path")
	}
}
