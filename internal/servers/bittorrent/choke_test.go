package bittorrent

import "testing"

func peersIn(list []*Peer) map[*Peer]bool {
	set := make(map[*Peer]bool, len(list))
	for _, p := range list {
		set[p] = true
	}
	return set
}

// TestPlanChokesRanksByRate checks tit-for-tat: with no optimistic slot
// the top maxUnchoked uploaders among interested peers get unchoked and
// everyone else interested is choked.
func TestPlanChokesRanksByRate(t *testing.T) {
	fast, mid, slow := &Peer{}, &Peer{}, &Peer{}
	cands := []chokeCand{
		{peer: fast, rate: 300, interested: true, choked: true},
		{peer: mid, rate: 200, interested: true, choked: false},
		{peer: slow, rate: 100, interested: true, choked: false},
	}
	unchoke, choke := planChokes(cands, 2, nil)
	u, c := peersIn(unchoke), peersIn(choke)
	if !u[fast] {
		t.Error("fastest peer not unchoked")
	}
	if u[mid] || c[mid] {
		t.Error("mid peer flipped despite already holding a slot")
	}
	if !c[slow] {
		t.Error("slowest peer not choked out of its slot")
	}
}

// TestPlanChokesOptimisticSlot checks the optimistic unchoke consumes
// one of the maxUnchoked slots regardless of its rate, and uninterested
// unchoked peers are always choked off.
func TestPlanChokesOptimisticSlot(t *testing.T) {
	fast, lucky, slow, bored := &Peer{}, &Peer{}, &Peer{}, &Peer{}
	cands := []chokeCand{
		{peer: fast, rate: 300, interested: true, choked: true},
		{peer: lucky, rate: 0, interested: true, choked: true},
		{peer: slow, rate: 100, interested: true, choked: true},
		{peer: bored, rate: 500, interested: false, choked: false},
	}
	unchoke, choke := planChokes(cands, 2, lucky)
	u, c := peersIn(unchoke), peersIn(choke)
	if !u[fast] {
		t.Error("fastest peer not unchoked")
	}
	if !u[lucky] {
		t.Error("optimistic peer not unchoked")
	}
	if u[slow] {
		t.Error("slow peer unchoked past the slot limit")
	}
	if !c[bored] {
		t.Error("uninterested unchoked peer not choked")
	}
}

// TestPlanChokesFlipsOnly checks the plan contains only peers whose
// state changes — steady state produces an empty plan.
func TestPlanChokesFlipsOnly(t *testing.T) {
	a, b := &Peer{}, &Peer{}
	cands := []chokeCand{
		{peer: a, rate: 300, interested: true, choked: false},
		{peer: b, rate: 100, interested: true, choked: true},
	}
	unchoke, choke := planChokes(cands, 4, nil)
	if len(choke) != 0 {
		t.Errorf("steady state choked %d peers", len(choke))
	}
	if got := peersIn(unchoke); !got[b] || got[a] {
		t.Errorf("want only the still-choked peer unchoked, got %d flips", len(unchoke))
	}

	unchoke, choke = planChokes(cands, 4, nil)
	if len(unchoke) != 1 || len(choke) != 0 {
		t.Errorf("plan not stable: %d unchokes, %d chokes", len(unchoke), len(choke))
	}
}

// TestPlanChokesAbundantSlots: more slots than interested peers means
// nobody interested is choked.
func TestPlanChokesAbundantSlots(t *testing.T) {
	a, b := &Peer{}, &Peer{}
	cands := []chokeCand{
		{peer: a, rate: 10, interested: true, choked: true},
		{peer: b, rate: 0, interested: true, choked: true},
	}
	unchoke, choke := planChokes(cands, 8, nil)
	if len(choke) != 0 || len(unchoke) != 2 {
		t.Errorf("with abundant slots: %d unchokes %d chokes, want 2/0", len(unchoke), len(choke))
	}
}
