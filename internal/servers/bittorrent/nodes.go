package bittorrent

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"github.com/flux-lang/flux/internal/bencode"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/torrent"
)

// errEmptyPoll terminates the message flow when the select timeout fired
// with nothing ready — the paper's most frequently executed BitTorrent
// path ends in ERROR exactly here (§5.2).
var errEmptyPoll = errors.New("bittorrent: no outstanding requests")

// --- message flow ------------------------------------------------------------

// getClients snapshots the peer count under the shared peers constraint
// (reader mode: many message flows may read the table concurrently).
func (s *Server) getClients(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tok := in[0].(*pollToken)
	tok.numPeers = len(s.peers)
	return in, nil
}

// selectSockets is the select step; the readiness wait happened in the
// Poll source, so this node only validates the token.
func (s *Server) selectSockets(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return in, nil
}

// checkSockets converts the token into the message record, erroring on
// an empty poll.
func (s *Server) checkSockets(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tok := in[0].(*pollToken)
	if tok.item == nil {
		return nil, errEmptyPoll
	}
	item := tok.item
	if item.err != nil {
		// Peer connection is done: flow on to Unregister via the
		// "closed" dispatch case.
		return runtime.Record{item.peer, true, &wireMsg{kind: "closed"}}, nil
	}
	return runtime.Record{item.peer, false, &wireMsg{raw: item.raw, kind: "raw"}}, nil
}

// readMessage parses the raw frame into a typed message and counts it on
// the per-message-type stream; malformed frames error to DropPeer.
func (s *Server) readMessage(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	m := in[2].(*wireMsg)
	if m.kind != "closed" {
		if m.raw == nil || m.raw.body == nil {
			m.msg = &Message{ID: -1}
			m.kind = "keepalive"
		} else {
			msg, err := ParseMessageBody(m.raw.body)
			if err != nil {
				return nil, err
			}
			m.msg = msg
			m.kind = msg.Kind()
		}
	}
	if i := msgKindIndex(m.kind); i >= 0 {
		s.msgCounts[i].Add(1)
	}
	return in, nil
}

// messageDone finishes the message flow (bookkeeping hook).
func (s *Server) messageDone(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return nil, nil
}

// removePeer takes the peer out of the table and releases its piece
// claims and availability counts — called under {peers, store} from the
// DropPeer and Unregister nodes; the removed latch makes the two paths
// (a flow kill followed by the pump's terminal report) idempotent.
func (s *Server) removePeer(p *Peer) {
	if !p.removed.CompareAndSwap(false, true) {
		return
	}
	delete(s.peers, p)
	for i := range s.avail {
		if p.bitfield.Has(i) {
			s.avail[i]--
		}
	}
	for piece, owner := range s.requestedBy {
		if owner == p {
			delete(s.requestedBy, piece)
			delete(s.requestedAt, piece)
		}
	}
	if s.optimistic == p {
		s.optimistic = nil
	}
}

// dropPeer is the error handler for ReadMessage: the offending peer is
// disconnected and unregistered. The pump owns the conn, so the flow
// only interrupts the socket; the pump's terminal report then reaches
// Unregister, whose removal is a no-op after ours.
func (s *Server) dropPeer(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.interrupt()
	s.removePeer(p)
	return nil, nil
}

// unregister removes a dead peer (the "closed" dispatch case) under the
// peers constraint. The pump already retired the conn.
func (s *Server) unregister(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.interrupt()
	s.removePeer(p)
	return in, nil
}

// --- per-message handlers (peer state under the session constraint) ---------

func (s *Server) onBitfield(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	bf := torrent.Bitfield(m.msg.Payload)
	if len(bf) != len(torrent.NewBitfield(s.cfg.Meta.NumPieces())) {
		return nil, fmt.Errorf("bittorrent: bitfield of %d bytes", len(bf))
	}
	// Swap availability counts from the old bitfield to the new one
	// (holds {peerstate, store}; avail rides the store constraint).
	for i := range s.avail {
		if p.bitfield.Has(i) {
			s.avail[i]--
		}
	}
	p.bitfield = bf.Clone()
	for i := range s.avail {
		if p.bitfield.Has(i) {
			s.avail[i]++
		}
	}
	// A leecher signals interest when the peer has pieces we miss, and —
	// unless choked — begins requesting immediately.
	if !s.store.Complete() {
		_ = p.send(&Message{ID: MsgInterested})
		if !p.theyChokeUs.Load() {
			s.requestMoreBlocks(p)
		}
	}
	return in, nil
}

func (s *Server) onHave(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	idx := int(m.msg.Index)
	if idx >= s.cfg.Meta.NumPieces() {
		return nil, fmt.Errorf("bittorrent: have for piece %d of %d", idx, s.cfg.Meta.NumPieces())
	}
	if !p.bitfield.Has(idx) {
		p.bitfield.Set(idx)
		s.avail[idx]++
	}
	return in, nil
}

func (s *Server) onInterested(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.interested.Store(true)
	if s.cfg.MaxUnchoked > 0 {
		// Real choking: the choke flow decides who is unchoked; interest
		// alone earns nothing.
		return in, nil
	}
	// Benchmark modification (§4.3): every peer is unchoked.
	p.choked.Store(false)
	_ = p.send(&Message{ID: MsgUnchoke})
	return in, nil
}

func (s *Server) onUninterested(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	in[0].(*Peer).interested.Store(false)
	return in, nil
}

func (s *Server) onChoke(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	in[0].(*Peer).theyChokeUs.Store(true)
	return in, nil
}

func (s *Server) onUnchoke(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.theyChokeUs.Store(false)
	// An unchoke opens the request window: start (or restart) the leech
	// pipeline.
	if !s.store.Complete() {
		s.requestMoreBlocks(p)
	}
	return in, nil
}

// onRequest serves a block (the paper's file-transfer path: the most
// expensive path in the profile of §5.2).
func (s *Server) onRequest(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	req := m.msg
	if p.choked.Load() {
		return in, nil // choked peers get nothing
	}
	if req.Length > torrent.BlockSize {
		return nil, fmt.Errorf("bittorrent: request of %d bytes", req.Length)
	}
	blk, err := s.store.ReadBlock(int(req.Index), int64(req.Begin), int64(req.Length))
	if err != nil {
		return nil, err
	}
	if err := p.send(&Message{ID: MsgPiece, Index: req.Index, Begin: req.Begin, Payload: blk}); err != nil {
		return nil, err
	}
	s.totalOut.Add(uint64(len(blk)))
	return in, nil
}

func (s *Server) onCancel(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	// Requests are served synchronously, so there is no queue to cancel
	// from; the node exists to complete the protocol (Figure 7).
	return in, nil
}

// onPiece stores a received block (leecher side) and flags completion
// for the piececomplete dispatch. Verified pieces feed the
// piece-latency stream (claim to verification).
func (s *Server) onPiece(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	msg := m.msg
	done, err := s.store.WriteBlock(int(msg.Index), int64(msg.Begin), msg.Payload)
	if err != nil {
		// A failed (e.g. hash-corrupt) piece must become requestable
		// again or the download would stall; the store has already
		// discarded its blocks.
		delete(s.requestedBy, int(msg.Index))
		delete(s.requestedAt, int(msg.Index))
		return nil, err
	}
	if p.pendingBlocks.Load() > 0 {
		p.pendingBlocks.Add(-1)
	}
	m.completed = done
	m.pieceIndex = msg.Index
	if done {
		if t, ok := s.requestedAt[int(msg.Index)]; ok {
			s.pieceLat.Record(time.Since(t))
			delete(s.requestedAt, int(msg.Index))
		}
	} else {
		s.requestMoreBlocks(p)
	}
	return in, nil
}

// requestMoreBlocks keeps the request pipeline full while leeching,
// claiming pieces rarest-first.
func (s *Server) requestMoreBlocks(p *Peer) {
	const pipeline = 8
	for p.pendingBlocks.Load() < pipeline {
		piece, ok := s.pickMissingPiece(p)
		if !ok {
			return
		}
		n := s.store.NumBlocks(piece)
		for b := 0; b < n; b++ {
			begin, length := s.store.BlockSpec(piece, b)
			if err := p.send(&Message{ID: MsgRequest, Index: uint32(piece), Begin: uint32(begin), Length: uint32(length)}); err != nil {
				return
			}
			p.pendingBlocks.Add(1)
		}
	}
}

// pickMissingPiece claims the rarest piece the peer has and we lack:
// lowest availability over connected peers' observed bitfields/haves,
// ties broken toward the lowest index. Runs under the store constraint.
func (s *Server) pickMissingPiece(p *Peer) (int, bool) {
	missing := s.store.Bitfield().Missing(s.cfg.Meta.NumPieces())
	best := -1
	bestAvail := int(^uint(0) >> 1)
	for _, i := range missing {
		if p.bitfield.Has(i) && s.requestedBy[i] == nil && s.avail[i] < bestAvail {
			best, bestAvail = i, s.avail[i]
		}
	}
	if best < 0 {
		return 0, false
	}
	s.requestedBy[best] = p
	s.requestedAt[best] = time.Now()
	return best, true
}

// completePiece broadcasts HAVE for a freshly verified piece to every
// ready peer (reader hold on the peers table).
func (s *Server) completePiece(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	m := in[2].(*wireMsg)
	for p := range s.peers {
		if p.ready.Load() {
			_ = p.send(&Message{ID: MsgHave, Index: m.pieceIndex})
		}
	}
	// Keep the leech pipeline moving.
	if p := in[0].(*Peer); !s.store.Complete() {
		s.requestMoreBlocks(p)
	}
	return in, nil
}

// --- choke flow ---------------------------------------------------------------

// chokeCand is one peer's standing at a choke tick.
type chokeCand struct {
	peer       *Peer
	rate       uint64 // bytes received from the peer since the last tick
	interested bool
	choked     bool // our current choke state toward the peer
}

// chokePlan lists peers whose choke state should flip.
type chokePlan struct {
	cands      []chokeCand
	unchoke    []*Peer
	choke      []*Peer
	optimistic *Peer
}

// updateChokeList snapshots candidate peers and their per-tick upload
// rates (reader on the table) and publishes the msg/* observer streams.
func (s *Server) updateChokeList(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	plan := &chokePlan{optimistic: s.optimistic}
	for p := range s.peers {
		if !p.ready.Load() {
			continue
		}
		if s.cfg.MaxUnchoked <= 0 {
			// Benchmark modification: unchoke everyone still choked.
			if p.choked.Load() {
				plan.unchoke = append(plan.unchoke, p)
			}
			continue
		}
		got := p.bytesIn.Load()
		plan.cands = append(plan.cands, chokeCand{
			peer:       p,
			rate:       got - p.rateBase,
			interested: p.interested.Load(),
			choked:     p.choked.Load(),
		})
		p.rateBase = got
	}
	s.publishMsgStreams()
	return runtime.Record{plan}, nil
}

// publishMsgStreams samples the per-message-type counters and the piece
// latency p95 onto the observer plane's QueueDepth surface under the
// msg/ prefix (registered as counters, so admission control skips them).
func (s *Server) publishMsgStreams() {
	obs := s.cfg.Observer
	if obs == nil {
		return
	}
	for i, k := range msgKinds {
		obs.QueueDepth(s.cfg.Engine, runtime.MsgStreamPrefix+k, int(s.msgCounts[i].Load()))
	}
	obs.QueueDepth(s.cfg.Engine, runtime.MsgStreamPrefix+"piece-p95us",
		int(s.pieceLat.Summary().P95/time.Microsecond))
}

// optimisticRotation is how many choke ticks an optimistic unchoke
// lasts (BEP 3: the optimistic slot rotates every third 10s tick).
const optimisticRotation = 3

// pickChoked applies the choking policy. With MaxUnchoked set this is
// tit-for-tat plus optimistic unchoke: the MaxUnchoked-1 fastest
// uploaders among interested peers keep their slots, one choked peer is
// optimistically unchoked (rotating every optimisticRotation ticks), and
// everyone else is choked. Without it the paper's benchmark policy —
// unchoke everyone — was already planned by UpdateChokeList.
func (s *Server) pickChoked(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	plan := in[0].(*chokePlan)
	if s.cfg.MaxUnchoked <= 0 {
		return in, nil
	}
	s.chokeTick++
	if s.optimistic == nil || s.chokeTick%optimisticRotation == 0 {
		// Rotate the optimistic slot onto a random choked interested peer.
		var pool []*Peer
		for _, c := range plan.cands {
			if c.choked && c.interested && c.peer != s.optimistic {
				pool = append(pool, c.peer)
			}
		}
		if len(pool) > 0 {
			s.optimistic = pool[s.chokeRng.Intn(len(pool))]
		}
	}
	plan.optimistic = s.optimistic
	plan.unchoke, plan.choke = planChokes(plan.cands, s.cfg.MaxUnchoked, plan.optimistic)
	return in, nil
}

// planChokes is the pure tit-for-tat policy: rank interested peers by
// their per-tick upload rate, keep the top maxUnchoked-1 plus the
// optimistic slot unchoked, choke the rest. Returned lists contain only
// peers whose state must flip.
func planChokes(cands []chokeCand, maxUnchoked int, optimistic *Peer) (unchoke, choke []*Peer) {
	regular := maxUnchoked
	hasOptimistic := false
	for _, c := range cands {
		if c.peer == optimistic {
			hasOptimistic = true
		}
	}
	if hasOptimistic && regular > 0 {
		regular--
	}
	ranked := make([]chokeCand, 0, len(cands))
	for _, c := range cands {
		if c.interested && c.peer != optimistic {
			ranked = append(ranked, c)
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].rate > ranked[j].rate })
	keep := make(map[*Peer]bool, regular+1)
	for i := 0; i < len(ranked) && i < regular; i++ {
		keep[ranked[i].peer] = true
	}
	if hasOptimistic {
		keep[optimistic] = true
	}
	for _, c := range cands {
		switch {
		case keep[c.peer] && c.choked:
			unchoke = append(unchoke, c.peer)
		case !keep[c.peer] && !c.choked:
			choke = append(choke, c.peer)
		}
	}
	return unchoke, choke
}

// sendChokeUnchoke transmits the plan.
func (s *Server) sendChokeUnchoke(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	plan := in[0].(*chokePlan)
	for _, p := range plan.unchoke {
		p.choked.Store(false)
		_ = p.send(&Message{ID: MsgUnchoke})
	}
	for _, p := range plan.choke {
		p.choked.Store(true)
		_ = p.send(&Message{ID: MsgChoke})
	}
	return nil, nil
}

// --- keep-alive flow -----------------------------------------------------------

func (s *Server) sendKeepAlives(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	for p := range s.peers {
		if p.ready.Load() {
			_ = p.send(&Message{ID: -1})
		}
	}
	return nil, nil
}

// --- tracker flow ---------------------------------------------------------------

// trackerReq is the assembled announce request.
type trackerReq struct {
	url string
}

// trackerResp is the decoded announce response.
type trackerResp struct {
	interval int64
	peers    []string // host:port
}

// checkinWithTracker assembles the announce URL.
func (s *Server) checkinWithTracker(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	_, portStr, err := splitHostPort(s.Addr())
	if err != nil {
		return nil, err
	}
	q := url.Values{}
	q.Set("info_hash", string(s.cfg.Meta.InfoHash[:]))
	q.Set("peer_id", string(s.peerID[:]))
	q.Set("port", portStr)
	left := int64(0)
	if !s.store.Complete() {
		left = s.cfg.Meta.Length
	}
	q.Set("left", strconv.FormatInt(left, 10))
	return runtime.Record{&trackerReq{url: s.announceURL() + "?" + q.Encode()}}, nil
}

func splitHostPort(addr string) (string, string, error) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i], addr[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("bittorrent: malformed address %q", addr)
}

// sendRequestToTracker performs the HTTP announce; failures route to
// TrackerFailed.
func (s *Server) sendRequestToTracker(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[0].(*trackerReq)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(req.url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	v, err := bencode.Decode(body)
	if err != nil {
		return nil, err
	}
	dict, ok := v.(map[string]any)
	if !ok {
		return nil, errors.New("bittorrent: tracker response is not a dictionary")
	}
	tr := &trackerResp{}
	tr.interval, _ = dict["interval"].(int64)
	if plist, ok := dict["peers"].([]any); ok {
		for _, pv := range plist {
			pd, ok := pv.(map[string]any)
			if !ok {
				continue
			}
			ip, _ := pd["ip"].(string)
			port, _ := pd["port"].(int64)
			if ip != "" && port > 0 {
				tr.peers = append(tr.peers, fmt.Sprintf("%s:%d", ip, port))
			}
		}
	}
	return runtime.Record{tr}, nil
}

// getTrackerResponse connects to newly discovered peers when leeching.
func (s *Server) getTrackerResponse(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tr := in[0].(*trackerResp)
	if s.store.Complete() {
		return nil, nil // seeders wait for inbound connections
	}
	self := s.Addr()
	for _, addr := range tr.peers {
		if addr == self {
			continue
		}
		_ = s.ConnectTo(addr)
	}
	return nil, nil
}

// trackerFailed swallows announce errors; the next timer tick retries.
func (s *Server) trackerFailed(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return nil, nil
}
