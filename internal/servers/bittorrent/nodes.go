package bittorrent

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/flux-lang/flux/internal/bencode"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/torrent"
)

// errEmptyPoll terminates the message flow when the select timeout fired
// with nothing ready — the paper's most frequently executed BitTorrent
// path ends in ERROR exactly here (§5.2).
var errEmptyPoll = errors.New("bittorrent: no outstanding requests")

// --- message flow ------------------------------------------------------------

// getClients snapshots the peer count under the shared peers constraint
// (reader mode: many message flows may read the table concurrently).
func (s *Server) getClients(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tok := in[0].(*pollToken)
	tok.numPeers = len(s.peers)
	return in, nil
}

// selectSockets is the select step; the readiness wait happened in the
// Poll source, so this node only validates the token.
func (s *Server) selectSockets(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return in, nil
}

// checkSockets converts the token into the message record, erroring on
// an empty poll.
func (s *Server) checkSockets(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tok := in[0].(*pollToken)
	if tok.item == nil {
		return nil, errEmptyPoll
	}
	item := tok.item
	if item.err != nil {
		// Peer connection is done: flow on to Unregister via the
		// "closed" dispatch case.
		return runtime.Record{item.peer, true, &wireMsg{kind: "closed"}}, nil
	}
	return runtime.Record{item.peer, false, &wireMsg{raw: item.raw, kind: "raw"}}, nil
}

// readMessage parses the raw frame into a typed message; malformed
// frames error to DropPeer.
func (s *Server) readMessage(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	m := in[2].(*wireMsg)
	if m.kind == "closed" {
		return in, nil
	}
	if m.raw == nil || m.raw.body == nil {
		m.msg = &Message{ID: -1}
		m.kind = "keepalive"
		return in, nil
	}
	msg, err := ParseMessageBody(m.raw.body)
	if err != nil {
		return nil, err
	}
	m.msg = msg
	m.kind = msg.Kind()
	return in, nil
}

// messageDone finishes the message flow (bookkeeping hook).
func (s *Server) messageDone(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return nil, nil
}

// dropPeer is the error handler for ReadMessage: the offending peer is
// disconnected and unregistered under the peers constraint.
func (s *Server) dropPeer(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.close()
	delete(s.peers, p)
	return nil, nil
}

// unregister removes a dead peer (the "closed" dispatch case) under the
// peers constraint.
func (s *Server) unregister(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.close()
	delete(s.peers, p)
	return in, nil
}

// --- per-message handlers (peer state under the session constraint) ---------

func (s *Server) onBitfield(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	bf := torrent.Bitfield(m.msg.Payload)
	if len(bf) != len(torrent.NewBitfield(s.cfg.Meta.NumPieces())) {
		return nil, fmt.Errorf("bittorrent: bitfield of %d bytes", len(bf))
	}
	p.bitfield = bf.Clone()
	// A leecher signals interest when the peer has pieces we miss, and
	// — since the benchmark protocol starts everyone unchoked — begins
	// requesting immediately.
	if !s.store.Complete() {
		_ = p.send(&Message{ID: MsgInterested})
		if !p.theyChokeUs {
			s.requestMoreBlocks(p)
		}
	}
	return in, nil
}

func (s *Server) onHave(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	p.bitfield.Set(int(m.msg.Index))
	return in, nil
}

func (s *Server) onInterested(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.interested = true
	// Benchmark modification (§4.3): every peer is unchoked.
	if p.choked {
		p.choked = false
	}
	_ = p.send(&Message{ID: MsgUnchoke})
	return in, nil
}

func (s *Server) onUninterested(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	in[0].(*Peer).interested = false
	return in, nil
}

func (s *Server) onChoke(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	in[0].(*Peer).theyChokeUs = true
	return in, nil
}

func (s *Server) onUnchoke(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.theyChokeUs = false
	// An unchoke opens the request window: start (or restart) the leech
	// pipeline.
	if !s.store.Complete() {
		s.requestMoreBlocks(p)
	}
	return in, nil
}

// onRequest serves a block (the paper's file-transfer path: the most
// expensive path in the profile of §5.2).
func (s *Server) onRequest(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	req := m.msg
	if p.choked {
		return in, nil // choked peers get nothing
	}
	if req.Length > torrent.BlockSize {
		return nil, fmt.Errorf("bittorrent: request of %d bytes", req.Length)
	}
	blk, err := s.store.ReadBlock(int(req.Index), int64(req.Begin), int64(req.Length))
	if err != nil {
		return nil, err
	}
	if err := p.send(&Message{ID: MsgPiece, Index: req.Index, Begin: req.Begin, Payload: blk}); err != nil {
		return nil, err
	}
	s.totalOut.Add(uint64(len(blk)))
	return in, nil
}

func (s *Server) onCancel(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	// Requests are served synchronously, so there is no queue to cancel
	// from; the node exists to complete the protocol (Figure 7).
	return in, nil
}

// onPiece stores a received block (leecher side) and flags completion
// for the piececomplete dispatch.
func (s *Server) onPiece(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	m := in[2].(*wireMsg)
	msg := m.msg
	done, err := s.store.WriteBlock(int(msg.Index), int64(msg.Begin), msg.Payload)
	if err != nil {
		// A failed (e.g. hash-corrupt) piece must become requestable
		// again or the download would stall; the store has already
		// discarded its blocks.
		delete(s.requested, int(msg.Index))
		return nil, err
	}
	if p.pendingBlocks > 0 {
		p.pendingBlocks--
	}
	m.completed = done
	m.pieceIndex = msg.Index
	if !done {
		s.requestMoreBlocks(p)
	}
	return in, nil
}

// requestMoreBlocks keeps the request pipeline full while leeching:
// random piece selection, as the protocol prescribes.
func (s *Server) requestMoreBlocks(p *Peer) {
	const pipeline = 8
	for p.pendingBlocks < pipeline {
		piece, ok := s.pickMissingPiece(p)
		if !ok {
			return
		}
		n := s.store.NumBlocks(piece)
		for b := 0; b < n; b++ {
			begin, length := s.store.BlockSpec(piece, b)
			if err := p.send(&Message{ID: MsgRequest, Index: uint32(piece), Begin: uint32(begin), Length: uint32(length)}); err != nil {
				return
			}
			p.pendingBlocks++
		}
	}
}

// pickMissingPiece chooses a piece the peer has and we lack.
func (s *Server) pickMissingPiece(p *Peer) (int, bool) {
	missing := s.store.Bitfield().Missing(s.cfg.Meta.NumPieces())
	for _, i := range missing {
		if p.bitfield.Has(i) && !s.requested[i] {
			s.requested[i] = true
			return i, true
		}
	}
	return 0, false
}

// completePiece broadcasts HAVE for a freshly verified piece to every
// peer (reader hold on the peers table).
func (s *Server) completePiece(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	m := in[2].(*wireMsg)
	for p := range s.peers {
		_ = p.send(&Message{ID: MsgHave, Index: m.pieceIndex})
	}
	// Keep the leech pipeline moving.
	if p := in[0].(*Peer); !s.store.Complete() {
		s.requestMoreBlocks(p)
	}
	return in, nil
}

// --- choke flow ---------------------------------------------------------------

// chokePlan lists peers whose choke state should flip.
type chokePlan struct {
	unchoke []*Peer
	choke   []*Peer
}

// updateChokeList snapshots candidate peers (reader on the table).
func (s *Server) updateChokeList(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	plan := &chokePlan{}
	for p := range s.peers {
		if p.choked {
			plan.unchoke = append(plan.unchoke, p)
		}
	}
	return runtime.Record{plan}, nil
}

// pickChoked applies the choking policy. The paper's benchmark disables
// choking ("all client peers are unchoked by default" and unlimited
// unchoked peers), so the policy unchokes everyone.
func (s *Server) pickChoked(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return in, nil
}

// sendChokeUnchoke transmits the plan.
func (s *Server) sendChokeUnchoke(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	plan := in[0].(*chokePlan)
	for _, p := range plan.unchoke {
		p.choked = false
		_ = p.send(&Message{ID: MsgUnchoke})
	}
	for _, p := range plan.choke {
		p.choked = true
		_ = p.send(&Message{ID: MsgChoke})
	}
	return nil, nil
}

// --- keep-alive flow -----------------------------------------------------------

func (s *Server) sendKeepAlives(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	for p := range s.peers {
		_ = p.send(&Message{ID: -1})
	}
	return nil, nil
}

// --- tracker flow ---------------------------------------------------------------

// trackerReq is the assembled announce request.
type trackerReq struct {
	url string
}

// trackerResp is the decoded announce response.
type trackerResp struct {
	interval int64
	peers    []string // host:port
}

// checkinWithTracker assembles the announce URL.
func (s *Server) checkinWithTracker(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	_, portStr, err := splitHostPort(s.Addr())
	if err != nil {
		return nil, err
	}
	q := url.Values{}
	q.Set("info_hash", string(s.cfg.Meta.InfoHash[:]))
	q.Set("peer_id", string(s.peerID[:]))
	q.Set("port", portStr)
	left := int64(0)
	if !s.store.Complete() {
		left = s.cfg.Meta.Length
	}
	q.Set("left", strconv.FormatInt(left, 10))
	return runtime.Record{&trackerReq{url: s.announceURL() + "?" + q.Encode()}}, nil
}

func splitHostPort(addr string) (string, string, error) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i], addr[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("bittorrent: malformed address %q", addr)
}

// sendRequestToTracker performs the HTTP announce; failures route to
// TrackerFailed.
func (s *Server) sendRequestToTracker(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	req := in[0].(*trackerReq)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(req.url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	v, err := bencode.Decode(body)
	if err != nil {
		return nil, err
	}
	dict, ok := v.(map[string]any)
	if !ok {
		return nil, errors.New("bittorrent: tracker response is not a dictionary")
	}
	tr := &trackerResp{}
	tr.interval, _ = dict["interval"].(int64)
	if plist, ok := dict["peers"].([]any); ok {
		for _, pv := range plist {
			pd, ok := pv.(map[string]any)
			if !ok {
				continue
			}
			ip, _ := pd["ip"].(string)
			port, _ := pd["port"].(int64)
			if ip != "" && port > 0 {
				tr.peers = append(tr.peers, fmt.Sprintf("%s:%d", ip, port))
			}
		}
	}
	return runtime.Record{tr}, nil
}

// getTrackerResponse connects to newly discovered peers when leeching.
func (s *Server) getTrackerResponse(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tr := in[0].(*trackerResp)
	if s.store.Complete() {
		return nil, nil // seeders wait for inbound connections
	}
	self := s.Addr()
	for _, addr := range tr.peers {
		if addr == self {
			continue
		}
		_ = s.ConnectTo(addr)
	}
	return nil, nil
}

// trackerFailed swallows announce errors; the next timer tick retries.
func (s *Server) trackerFailed(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	return nil, nil
}
