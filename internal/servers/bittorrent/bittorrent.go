// The Flux BitTorrent peer. The program graph follows Figure 7 of the
// paper: a Listen source sets up incoming peer connections; a Poll
// source (the select loop) feeds the message flow whose HandleMessage
// node dispatches on the wire message type; choke, keep-alive, and
// tracker timers drive their own flows. Peers are Flux sessions: the
// per-peer protocol state is guarded by a session-scoped constraint
// (§2.5.1), while the peer table and the piece store use global
// constraints.
//
// Connection admission runs on the shared connection plane
// (internal/netkit): the plane's accept loop wraps each connection in
// pooled state and admits it through the runtime's external-admission
// path (Server.Inject via a pre-resolved SourceHandle); outbound dials
// (leecher bootstrap, tracker discovery) are adopted onto the same
// plane through AdmitDialed. Overload control — a queue-depth watermark
// gate, a live-connection cap, and optionally the SLO controller —
// sheds fresh peers with counted ConnShed events instead of queueing
// them unboundedly.
//
// Readiness substrate: the paper's runtime intercepts blocking socket
// reads and multiplexes them with select; here every registered peer has
// a pump goroutine reading raw frames into a bounded inbox that the Poll
// source drains with a timeout. An empty poll errors at CheckSockets,
// reproducing the paper's most frequently executed path ("... ->
// CheckSockets -> ERROR", §5.2).
package bittorrent

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/metrics"
	"github.com/flux-lang/flux/internal/netkit"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/telemetry"
	"github.com/flux-lang/flux/internal/torrent"
)

// FluxSource is the peer's Flux program (the shape of Figure 7).
const FluxSource = `
// --- incoming connections ---------------------------------------------
Listen () => (peerconn c);
SetupConnection (peerconn c) => (peerconn c);
Handshake (peerconn c) => (peerconn c);
SendBitfield (peerconn c) => ();
DropConn (peerconn c) => ();

source Listen => Accept;
Accept = SetupConnection -> Handshake -> SendBitfield;
handle error Handshake => DropConn;

// --- message processing (the select loop) ------------------------------
Poll () => (polltoken *tok);
GetClients (polltoken *tok) => (polltoken *tok);
SelectSockets (polltoken *tok) => (polltoken *tok);
CheckSockets (polltoken *tok) => (peerref *p, bool close, message *msg);
ReadMessage (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
MessageDone (peerref *p, bool close, message *msg) => ();
DropPeer (peerref *p, bool close, message *msg) => ();

Bitfield (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Have (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Interested (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Uninterested (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Choke (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Unchoke (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Request (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Cancel (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Piece (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
CompletePiece (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Unregister (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);

source Poll => Message;
Message = GetClients -> SelectSockets -> CheckSockets -> ReadMessage -> HandleMessage -> MessageDone;
handle error ReadMessage => DropPeer;

typedef bitfield IsBitfield;
typedef have IsHave;
typedef interested IsInterested;
typedef uninterested IsUninterested;
typedef choke IsChoke;
typedef unchoke IsUnchoke;
typedef request IsRequest;
typedef cancel IsCancel;
typedef piece IsPiece;
typedef closed IsClosed;
typedef piececomplete IsPieceComplete;

HandleMessage:[_, _, bitfield] = Bitfield;
HandleMessage:[_, _, have] = Have;
HandleMessage:[_, _, interested] = Interested;
HandleMessage:[_, _, uninterested] = Uninterested;
HandleMessage:[_, _, choke] = Choke;
HandleMessage:[_, _, unchoke] = Unchoke;
HandleMessage:[_, _, request] = Request;
HandleMessage:[_, _, cancel] = Cancel;
HandleMessage:[_, _, piece] = Piece -> PieceDone;
HandleMessage:[_, _, closed] = Unregister;
HandleMessage:[_, _, _] = ;

PieceDone:[_, _, piececomplete] = CompletePiece;
PieceDone:[_, _, _] = ;

// --- timers -------------------------------------------------------------
ChokeTimer () => (int tick);
UpdateChokeList (int tick) => (chokeplan *plan);
PickChoked (chokeplan *plan) => (chokeplan *plan);
SendChokeUnchoke (chokeplan *plan) => ();
source ChokeTimer => ChokeFlow;
ChokeFlow = UpdateChokeList -> PickChoked -> SendChokeUnchoke;

KeepAliveTimer () => (int tick);
SendKeepAlives (int tick) => ();
source KeepAliveTimer => KeepAlive;
KeepAlive = SendKeepAlives;

TrackerTimer () => (int tick);
CheckinWithTracker (int tick) => (trackerreq *req);
SendRequestToTracker (trackerreq *req) => (trackerresp *resp);
GetTrackerResponse (trackerresp *resp) => ();
TrackerFailed (trackerreq *req) => ();
source TrackerTimer => Tracker;
Tracker = CheckinWithTracker -> SendRequestToTracker -> GetTrackerResponse;
handle error SendRequestToTracker => TrackerFailed;

// --- sessions and constraints -------------------------------------------
// Each peer is a session: per-peer protocol state contends only within
// the peer's own message flows.
session Poll PeerSession;

atomic SetupConnection:{peers};
atomic GetClients:{peers?};
atomic Unregister:{peers, store, peerstate(session)};
atomic DropPeer:{peers, store, peerstate(session)};
atomic UpdateChokeList:{peers?};
atomic SendKeepAlives:{peers?};
atomic CompletePiece:{peers?, store};
atomic Bitfield:{peerstate(session), store};
atomic Have:{peerstate(session), store};
atomic Interested:{peerstate(session)};
atomic Uninterested:{peerstate(session)};
atomic Choke:{peerstate(session)};
atomic Unchoke:{peerstate(session), store};
atomic Request:{peerstate(session)?, store?};
atomic Piece:{peerstate(session), store};
`

// Config tunes the peer.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Meta and Content define the torrent; with Content the peer seeds,
	// without it the peer leeches.
	Meta    *torrent.MetaInfo
	Content []byte
	// AnnounceURL overrides Meta.Announce ("" disables the tracker
	// flow).
	AnnounceURL string
	// TrackerInterval is the check-in period (default 10s).
	TrackerInterval time.Duration
	// ChokeInterval is the choke recomputation period (default 10s).
	ChokeInterval time.Duration
	// KeepAliveInterval is the keep-alive period (default 30s).
	KeepAliveInterval time.Duration
	// PollInterval is the select timeout of the message loop (default
	// 500µs) — the paper's most frequent path is the empty poll.
	PollInterval time.Duration
	// Engine, PoolSize, SourceTimeout, Profiler configure the runtime.
	Engine        runtime.EngineKind
	PoolSize      int
	SourceTimeout time.Duration
	Profiler      runtime.Profiler
	// Observer, when non-nil, joins the runtime's observer plane: flow
	// terminals, queue depths, per-message-type counters (msg/*), and
	// the connection plane's shed events.
	Observer runtime.Observer
	// Telemetry, when non-nil, rides the observer plane alongside
	// Observer and receives the connection plane's admission counters.
	Telemetry *telemetry.Telemetry
	// MaxUnchoked, when > 0, enables real choking: each choke tick the
	// tit-for-tat policy unchokes the MaxUnchoked-1 fastest-uploading
	// interested peers plus one rotating optimistic slot, and chokes
	// the rest. 0 keeps the paper's benchmark modification — every
	// peer stays unchoked (§4.3).
	MaxUnchoked int
	// HandshakeTimeout bounds the 68-byte handshake exchange (default
	// 10s): a peer that dials and stalls mid-handshake is disconnected
	// and counted as a shed instead of pinning the accept flow forever.
	HandshakeTimeout time.Duration
	// IdleTimeout, when > 0, bounds the wait for the next frame from a
	// registered peer; dead keep-alive peers are reaped and counted the
	// same way. 0 waits forever (keep-alives normally arrive every
	// KeepAliveInterval).
	IdleTimeout time.Duration
	// WriteTimeout bounds every serialized wire write (default 30s): a
	// peer that stops draining its socket mid-frame would otherwise pin
	// the per-peer write mutex — and every broadcast flow behind it —
	// forever. On a pop the connection is torn down and the shed counted.
	WriteTimeout time.Duration
	// AdmitWatermark, when > 0, bounds admission: once the engine's
	// sampled queue depths sum past it, fresh peer connections are shed
	// (closed, counted) until the backlog drains.
	AdmitWatermark int
	// MaxConns, when > 0, caps live peer connections; accepts beyond it
	// are shed. Outbound dials bypass the cap (the server chose them).
	MaxConns int
	// QueueSample overrides the queue-depth sampling period (default
	// 5ms with an AdmitWatermark, else the runtime's 100ms).
	QueueSample time.Duration
	// TargetP95, when > 0, puts admission under the SLO controller:
	// served flow latency is measured on the Observer plane and every
	// control interval the watermark — and the connection cap — takes
	// one AIMD step toward holding the window's p95 at the target.
	TargetP95 time.Duration
}

// msgKinds enumerates the per-message-type counters, in wire-ID order
// with the two pseudo-kinds last.
var msgKinds = []string{
	"choke", "unchoke", "interested", "uninterested", "have",
	"bitfield", "request", "piece", "cancel", "keepalive", "closed",
}

func msgKindIndex(kind string) int {
	for i, k := range msgKinds {
		if k == kind {
			return i
		}
	}
	return -1
}

// Server is a runnable Flux BitTorrent peer.
type Server struct {
	cfg    Config
	prog   *core.Program
	rt     *runtime.Server
	cp     *netkit.FluxPlane
	ctrl   *netkit.Controller
	store  *torrent.Store
	peerID [20]byte

	inbox chan *inboxItem

	// peers is guarded by the Flux "peers" constraint.
	peers       map[*Peer]bool
	nextSession uint64

	// Leech-side piece claims, guarded by the "store" constraint:
	// requestedBy maps a claimed piece to the peer it was requested
	// from (claims release when that peer dies), requestedAt stamps the
	// claim for the piece-latency stream, avail counts how many
	// connected peers hold each piece (rarest-first input).
	requestedBy map[int]*Peer
	requestedAt map[int]time.Time
	avail       []int

	// pieceLat records request-to-verified latency per piece.
	pieceLat *metrics.LatencyRecorder

	// msgCounts counts received messages per wire kind (msgKinds order).
	msgCounts [11]atomic.Uint64

	// Choke-flow state (single flow at a time): the optimistic-unchoke
	// slot, its rotation counter, and the rotation RNG.
	optimistic *Peer
	chokeTick  uint64
	chokeRng   *mrand.Rand

	// totalOut counts piece payload bytes served.
	totalOut atomic.Uint64

	// trackerTick paces the tracker flow.
	trackerTick runtime.SourceFunc

	startOnce sync.Once
	started   chan struct{}
}

// New compiles the program and prepares the peer.
func New(cfg Config) (*Server, error) {
	if cfg.Meta == nil {
		return nil, errors.New("bittorrent: Config.Meta is required")
	}
	if cfg.TrackerInterval <= 0 {
		cfg.TrackerInterval = 10 * time.Second
	}
	if cfg.ChokeInterval <= 0 {
		cfg.ChokeInterval = 10 * time.Second
	}
	if cfg.KeepAliveInterval <= 0 {
		cfg.KeepAliveInterval = 30 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Microsecond
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.TargetP95 > 0 && cfg.AdmitWatermark <= 0 {
		cfg.AdmitWatermark = 64 // the controller's starting point
	}
	if cfg.QueueSample <= 0 && cfg.AdmitWatermark > 0 {
		cfg.QueueSample = 5 * time.Millisecond
	}

	astProg, err := parser.Parse("bittorrent.flux", FluxSource)
	if err != nil {
		return nil, fmt.Errorf("bittorrent: parse: %w", err)
	}
	prog, err := core.Build(astProg)
	if err != nil {
		return nil, fmt.Errorf("bittorrent: compile: %w", err)
	}

	var store *torrent.Store
	if cfg.Content != nil {
		store, err = torrent.NewSeeder(cfg.Meta, cfg.Content)
		if err != nil {
			return nil, err
		}
	} else {
		store = torrent.NewLeecher(cfg.Meta)
	}

	s := &Server{
		cfg:         cfg,
		prog:        prog,
		store:       store,
		inbox:       make(chan *inboxItem, 4096),
		peers:       make(map[*Peer]bool),
		requestedBy: make(map[int]*Peer),
		requestedAt: make(map[int]time.Time),
		avail:       make([]int, cfg.Meta.NumPieces()),
		pieceLat:    metrics.NewLatencyRecorder(),
		started:     make(chan struct{}),
	}
	if _, err := rand.Read(s.peerID[:]); err != nil {
		return nil, err
	}
	copy(s.peerID[:8], "-FLUX01-")
	s.chokeRng = mrand.New(mrand.NewSource(int64(binary.BigEndian.Uint64(s.peerID[8:16]))))
	s.trackerTick = runtime.IntervalSource(cfg.TrackerInterval)

	if cfg.Telemetry != nil {
		cfg.Observer = runtime.MultiObserver(cfg.Observer, cfg.Telemetry)
	}
	gate, obs := netkit.NewGateObserver(cfg.AdmitWatermark, cfg.Observer)
	if cfg.TargetP95 > 0 {
		// The controller joins the observer chain now (FlowDone is its
		// input signal) and meets the plane after the runtime exists.
		ctrl, err := netkit.NewController(netkit.ControllerConfig{
			Target:   cfg.TargetP95,
			Interval: 50 * time.Millisecond,
			Step:     4,
			Kind:     cfg.Engine,
			Sink:     cfg.Observer,
		}, gate, nil)
		if err != nil {
			return nil, fmt.Errorf("bittorrent: %w", err)
		}
		s.ctrl = ctrl
		obs = runtime.MultiObserver(obs, ctrl)
	}

	b := runtime.NewBindings().
		BindSource("Listen", s.listen).
		BindSource("Poll", s.poll).
		BindSource("ChokeTimer", s.timer(cfg.ChokeInterval)).
		BindSource("KeepAliveTimer", s.timer(cfg.KeepAliveInterval)).
		BindSource("TrackerTimer", s.trackerTimer).
		BindNode("SetupConnection", s.setupConnection).
		BindNode("Handshake", s.handshake).
		BindNode("SendBitfield", s.sendBitfield).
		BindNode("DropConn", s.dropConn).
		BindNode("GetClients", s.getClients).
		BindNode("SelectSockets", s.selectSockets).
		BindNode("CheckSockets", s.checkSockets).
		BindNode("ReadMessage", s.readMessage).
		BindNode("MessageDone", s.messageDone).
		BindNode("DropPeer", s.dropPeer).
		BindNode("Bitfield", s.onBitfield).
		BindNode("Have", s.onHave).
		BindNode("Interested", s.onInterested).
		BindNode("Uninterested", s.onUninterested).
		BindNode("Choke", s.onChoke).
		BindNode("Unchoke", s.onUnchoke).
		BindNode("Request", s.onRequest).
		BindNode("Cancel", s.onCancel).
		BindNode("Piece", s.onPiece).
		BindNode("CompletePiece", s.completePiece).
		BindNode("Unregister", s.unregister).
		BindNode("UpdateChokeList", s.updateChokeList).
		BindNode("PickChoked", s.pickChoked).
		BindNode("SendChokeUnchoke", s.sendChokeUnchoke).
		BindNode("SendKeepAlives", s.sendKeepAlives).
		BindNode("CheckinWithTracker", s.checkinWithTracker).
		BindNode("SendRequestToTracker", s.sendRequestToTracker).
		BindNode("GetTrackerResponse", s.getTrackerResponse).
		BindNode("TrackerFailed", s.trackerFailed).
		BindSession("PeerSession", func(rec runtime.Record) uint64 {
			tok := rec[0].(*pollToken)
			if tok.item != nil && tok.item.peer != nil {
				return tok.item.peer.session
			}
			return 0
		}).
		BindPredicate("IsBitfield", kindPred("bitfield")).
		BindPredicate("IsHave", kindPred("have")).
		BindPredicate("IsInterested", kindPred("interested")).
		BindPredicate("IsUninterested", kindPred("uninterested")).
		BindPredicate("IsChoke", kindPred("choke")).
		BindPredicate("IsUnchoke", kindPred("unchoke")).
		BindPredicate("IsRequest", kindPred("request")).
		BindPredicate("IsCancel", kindPred("cancel")).
		BindPredicate("IsPiece", kindPred("piece")).
		BindPredicate("IsClosed", kindPred("closed")).
		BindPredicate("IsPieceComplete", func(v any) bool { return v.(*wireMsg).completed }).
		MarkBlocking("Handshake", "SendBitfield", "Request", "SendKeepAlives",
			"SendRequestToTracker", "SendChokeUnchoke", "CompletePiece")

	rt, err := runtime.New(prog, b,
		runtime.WithEngine(cfg.Engine),
		runtime.WithPoolSize(cfg.PoolSize),
		runtime.WithSourceTimeout(cfg.SourceTimeout),
		runtime.WithProfiler(cfg.Profiler),
		runtime.WithObserver(obs),
		runtime.WithQueueSampleInterval(cfg.QueueSample),
	)
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.cp, err = netkit.NewFluxPlane(rt, "Listen", netkit.Config{
		Addr:     cfg.Addr,
		Gate:     gate,
		MaxConns: cfg.MaxConns,
		// BitTorrent has no 503: shed peers are closed silently and the
		// remote treats the reset as a refusal.
		ShedResponse: nil,
		Observer:     obs,
		Name:         "bittorrent",
	})
	if err != nil {
		return nil, err
	}
	if s.ctrl != nil {
		s.ctrl.BindPlane(s.cp.Plane())
	}
	if cfg.Telemetry != nil {
		pl := s.cp.Plane()
		cfg.Telemetry.RegisterConns("bittorrent", func() telemetry.ConnStats {
			st := pl.Stats()
			return telemetry.ConnStats{Accepted: st.Accepted, Admitted: st.Admitted, Shed: st.Shed, Live: st.Live}
		})
	}
	return s, nil
}

func kindPred(kind string) runtime.PredicateFunc {
	return func(v any) bool { return v.(*wireMsg).kind == kind }
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.cp.Addr() }

// Program exposes the compiled program.
func (s *Server) Program() *core.Program { return s.prog }

// Stats exposes runtime counters.
func (s *Server) Stats() *runtime.Stats { return s.rt.Stats() }

// PlaneStats exposes the connection plane's admission counters.
func (s *Server) PlaneStats() netkit.StatsSnapshot { return s.cp.PlaneStats() }

// Gate exposes the admission gate (nil without an AdmitWatermark).
func (s *Server) Gate() *netkit.Gate { return s.cp.Gate() }

// Controller exposes the SLO controller (nil without a TargetP95).
func (s *Server) Controller() *netkit.Controller { return s.ctrl }

// Store exposes the piece store (for completeness checks in tests).
func (s *Server) Store() *torrent.Store { return s.store }

// BytesServed totals piece payload bytes sent to all peers, including
// ones that have disconnected.
func (s *Server) BytesServed() uint64 { return s.totalOut.Load() }

// MsgCounts snapshots the per-message-type receive counters.
func (s *Server) MsgCounts() map[string]uint64 {
	out := make(map[string]uint64, len(msgKinds))
	for i, k := range msgKinds {
		out[k] = s.msgCounts[i].Load()
	}
	return out
}

// PieceLatency digests the request-to-verified piece latency stream
// (leech side).
func (s *Server) PieceLatency() metrics.LatencySummary { return s.pieceLat.Summary() }

// Start launches the Flux runtime, the connection plane's accept loop,
// and (with a TargetP95) the SLO control loop; the peer then serves
// until the context is cancelled or Shutdown is called.
func (s *Server) Start(ctx context.Context) error {
	if err := s.cp.Start(ctx); err != nil {
		return err
	}
	if s.ctrl != nil {
		s.ctrl.Start(ctx)
	}
	s.startOnce.Do(func() { close(s.started) })
	return nil
}

// Shutdown gracefully stops the peer: the plane stops accepting and
// interrupts every live connection (pumps report their peers dead), then
// the runtime stops admitting and drains in-flight flows until their
// terminals or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.ctrl != nil {
		s.ctrl.Stop()
	}
	return s.cp.Shutdown(ctx)
}

// Wait blocks until the run ends and returns its error.
func (s *Server) Wait() error { return s.cp.Wait() }

// Run serves until the context is cancelled: Start followed by Wait.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	return s.Wait()
}

// ConnectTo dials a remote peer (leecher bootstrap) and adopts the
// connection onto the plane: it is injected through the same Accept
// pipeline as inbound peers and tracked for the shutdown sweep. Callers
// may race Start (tests launch Run concurrently); the dial waits for
// admission to be live.
func (s *Server) ConnectTo(addr string) error {
	select {
	case <-s.started:
	case <-time.After(5 * time.Second):
		return errors.New("bittorrent: server not started")
	}
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	return s.cp.AdmitDialed(nc)
}

// --- source nodes ----------------------------------------------------------

// listen is the graph's source node. The connection plane owns accept
// and admission: every peer connection — accepted or dialed — enters
// through Inject on this source's graph, so the source itself retires
// immediately; the Poll and timer sources keep the server alive.
func (s *Server) listen(fl *runtime.Flow) (runtime.Record, error) {
	return nil, runtime.ErrStop
}

// poll is the select loop: it returns a ready inbox item, or an empty
// token when the poll interval elapses with nothing ready.
func (s *Server) poll(fl *runtime.Flow) (runtime.Record, error) {
	wait := s.cfg.PollInterval
	if fl.SourceTimeout > 0 && fl.SourceTimeout < wait {
		wait = fl.SourceTimeout
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	if fl.Wake != nil {
		select {
		case item := <-s.inbox:
			return runtime.Record{&pollToken{item: item}}, nil
		case <-t.C:
			return runtime.Record{&pollToken{}}, nil
		case <-fl.Wake:
			// The engine has pending work; yield without consuming the
			// empty-poll path (which would count as a flow).
			return nil, runtime.ErrNoData
		case <-fl.Ctx.Done():
			return nil, fl.Ctx.Err()
		}
	}
	select {
	case item := <-s.inbox:
		return runtime.Record{&pollToken{item: item}}, nil
	case <-t.C:
		return runtime.Record{&pollToken{}}, nil
	case <-fl.Ctx.Done():
		return nil, fl.Ctx.Err()
	}
}

// timer builds a deadline-aware interval source.
func (s *Server) timer(interval time.Duration) runtime.SourceFunc {
	return runtime.IntervalSource(interval)
}

// trackerTimer stops immediately when no tracker is configured.
func (s *Server) trackerTimer(fl *runtime.Flow) (runtime.Record, error) {
	if s.announceURL() == "" {
		return nil, runtime.ErrStop
	}
	return s.trackerTick(fl)
}

func (s *Server) announceURL() string {
	if s.cfg.AnnounceURL != "" {
		return s.cfg.AnnounceURL
	}
	return s.cfg.Meta.Announce
}

// --- accept flow -------------------------------------------------------------

// setupConnection registers the peer under the peers constraint and
// assigns its session id.
func (s *Server) setupConnection(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	s.nextSession++
	p := &Peer{
		conn:         c,
		nc:           c.NetConn(),
		br:           c.Reader(),
		session:      s.nextSession,
		bitfield:     torrent.NewBitfield(s.cfg.Meta.NumPieces()),
		writeTimeout: s.cfg.WriteTimeout,
		onWriteTimeout: func() {
			s.cp.CountShed("write-timeout")
		},
	}
	// Real choking starts everyone choked; the paper's benchmark
	// modification starts everyone unchoked.
	p.choked.Store(s.cfg.MaxUnchoked > 0)
	s.peers[p] = true
	return runtime.Record{p}, nil
}

// handshake exchanges and validates handshakes under the handshake
// deadline; a peer that stalls mid-handshake is shed and counted.
func (s *Server) handshake(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	_ = p.nc.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	p.writeMu.Lock()
	err := WriteHandshake(p.nc, s.cfg.Meta.InfoHash, s.peerID)
	p.writeMu.Unlock()
	if err != nil {
		return nil, s.shedIfTimeout(err, "handshake-timeout")
	}
	infoHash, peerID, err := ReadHandshake(p.br)
	if err != nil {
		return nil, s.shedIfTimeout(err, "handshake-timeout")
	}
	if infoHash != s.cfg.Meta.InfoHash {
		return nil, errors.New("bittorrent: info hash mismatch")
	}
	_ = p.nc.SetDeadline(time.Time{})
	p.id = peerID
	return in, nil
}

// shedIfTimeout counts a deadline pop as a shed on the plane before the
// error routes to its handler (which owns the close).
func (s *Server) shedIfTimeout(err error, reason string) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.cp.CountShed(reason)
	}
	return err
}

// sendBitfield announces our pieces, marks the peer ready for broadcast
// flows, and starts its read pump.
func (s *Server) sendBitfield(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	bf := s.store.Bitfield()
	if err := p.send(&Message{ID: MsgBitfield, Payload: bf}); err != nil {
		return nil, err
	}
	p.ready.Store(true)
	go s.pump(p)
	return nil, nil
}

// dropConn handles handshake failures. The pump has not started, so the
// flow owns the conn: it retires the pooled state and reports the peer
// dead through the inbox so the Unregister flow removes it from the
// table under the peers constraint.
func (s *Server) dropConn(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	switch v := in[0].(type) {
	case *netkit.Conn:
		v.Close()
	case *Peer:
		v.retire()
		select {
		case s.inbox <- &inboxItem{peer: v, err: io.EOF}:
		default:
		}
	}
	return nil, nil
}

// pump reads raw frames into the inbox until the connection dies — the
// per-socket half of the readiness substrate. It is the pooled conn's
// owner from SendBitfield on: retirement happens exactly here, on
// read-loop exit. With an IdleTimeout, a peer that stops sending even
// keep-alives is reaped and counted as a shed.
func (s *Server) pump(p *Peer) {
	idle := s.cfg.IdleTimeout
	for {
		if idle > 0 {
			_ = p.nc.SetReadDeadline(time.Now().Add(idle))
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(p.br, lenBuf[:]); err != nil {
			s.pumpExit(p, err)
			return
		}
		length := binary.BigEndian.Uint32(lenBuf[:])
		if length == 0 {
			s.inbox <- &inboxItem{peer: p, raw: &rawFrame{}}
			continue
		}
		if length > maxFrame {
			s.pumpExit(p, fmt.Errorf("frame too large: %d", length))
			return
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(p.br, body); err != nil {
			s.pumpExit(p, err)
			return
		}
		p.bytesIn.Add(uint64(length))
		s.inbox <- &inboxItem{peer: p, raw: &rawFrame{body: body}}
	}
}

// pumpExit retires the peer's conn and reports it dead. An idle-timeout
// reap (the peer was alive as far as we knew) is counted as a shed;
// remote closes and resets are ordinary departures.
func (s *Server) pumpExit(p *Peer, err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() && !p.closed.Load() {
		s.cp.CountShed("idle")
	}
	p.retire()
	s.inbox <- &inboxItem{peer: p, err: err}
}
