// The Flux BitTorrent peer. The program graph follows Figure 7 of the
// paper: a Listen source sets up incoming peer connections; a Poll
// source (the select loop) feeds the message flow whose HandleMessage
// node dispatches on the wire message type; choke, keep-alive, and
// tracker timers drive their own flows. Peers are Flux sessions: the
// per-peer protocol state is guarded by a session-scoped constraint
// (§2.5.1), while the peer table and the piece store use global
// constraints.
//
// Readiness substrate: the paper's runtime intercepts blocking socket
// reads and multiplexes them with select; here every registered peer has
// a pump goroutine reading raw frames into a bounded inbox that the Poll
// source drains with a timeout. An empty poll errors at CheckSockets,
// reproducing the paper's most frequently executed path ("... ->
// CheckSockets -> ERROR", §5.2).
package bittorrent

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/torrent"
)

// FluxSource is the peer's Flux program (the shape of Figure 7).
const FluxSource = `
// --- incoming connections ---------------------------------------------
Listen () => (peerconn c);
SetupConnection (peerconn c) => (peerconn c);
Handshake (peerconn c) => (peerconn c);
SendBitfield (peerconn c) => ();
DropConn (peerconn c) => ();

source Listen => Accept;
Accept = SetupConnection -> Handshake -> SendBitfield;
handle error Handshake => DropConn;

// --- message processing (the select loop) ------------------------------
Poll () => (polltoken *tok);
GetClients (polltoken *tok) => (polltoken *tok);
SelectSockets (polltoken *tok) => (polltoken *tok);
CheckSockets (polltoken *tok) => (peerref *p, bool close, message *msg);
ReadMessage (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
MessageDone (peerref *p, bool close, message *msg) => ();
DropPeer (peerref *p, bool close, message *msg) => ();

Bitfield (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Have (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Interested (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Uninterested (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Choke (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Unchoke (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Request (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Cancel (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Piece (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
CompletePiece (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);
Unregister (peerref *p, bool close, message *msg) => (peerref *p, bool close, message *msg);

source Poll => Message;
Message = GetClients -> SelectSockets -> CheckSockets -> ReadMessage -> HandleMessage -> MessageDone;
handle error ReadMessage => DropPeer;

typedef bitfield IsBitfield;
typedef have IsHave;
typedef interested IsInterested;
typedef uninterested IsUninterested;
typedef choke IsChoke;
typedef unchoke IsUnchoke;
typedef request IsRequest;
typedef cancel IsCancel;
typedef piece IsPiece;
typedef closed IsClosed;
typedef piececomplete IsPieceComplete;

HandleMessage:[_, _, bitfield] = Bitfield;
HandleMessage:[_, _, have] = Have;
HandleMessage:[_, _, interested] = Interested;
HandleMessage:[_, _, uninterested] = Uninterested;
HandleMessage:[_, _, choke] = Choke;
HandleMessage:[_, _, unchoke] = Unchoke;
HandleMessage:[_, _, request] = Request;
HandleMessage:[_, _, cancel] = Cancel;
HandleMessage:[_, _, piece] = Piece -> PieceDone;
HandleMessage:[_, _, closed] = Unregister;
HandleMessage:[_, _, _] = ;

PieceDone:[_, _, piececomplete] = CompletePiece;
PieceDone:[_, _, _] = ;

// --- timers -------------------------------------------------------------
ChokeTimer () => (int tick);
UpdateChokeList (int tick) => (chokeplan *plan);
PickChoked (chokeplan *plan) => (chokeplan *plan);
SendChokeUnchoke (chokeplan *plan) => ();
source ChokeTimer => ChokeFlow;
ChokeFlow = UpdateChokeList -> PickChoked -> SendChokeUnchoke;

KeepAliveTimer () => (int tick);
SendKeepAlives (int tick) => ();
source KeepAliveTimer => KeepAlive;
KeepAlive = SendKeepAlives;

TrackerTimer () => (int tick);
CheckinWithTracker (int tick) => (trackerreq *req);
SendRequestToTracker (trackerreq *req) => (trackerresp *resp);
GetTrackerResponse (trackerresp *resp) => ();
TrackerFailed (trackerreq *req) => ();
source TrackerTimer => Tracker;
Tracker = CheckinWithTracker -> SendRequestToTracker -> GetTrackerResponse;
handle error SendRequestToTracker => TrackerFailed;

// --- sessions and constraints -------------------------------------------
// Each peer is a session: per-peer protocol state contends only within
// the peer's own message flows.
session Poll PeerSession;

atomic SetupConnection:{peers};
atomic GetClients:{peers?};
atomic Unregister:{peers};
atomic DropPeer:{peers};
atomic UpdateChokeList:{peers?};
atomic SendKeepAlives:{peers?};
atomic CompletePiece:{peers?, store};
atomic Bitfield:{peerstate(session), store};
atomic Have:{peerstate(session)};
atomic Interested:{peerstate(session)};
atomic Uninterested:{peerstate(session)};
atomic Choke:{peerstate(session)};
atomic Unchoke:{peerstate(session), store};
atomic Request:{peerstate(session)?, store?};
atomic Piece:{peerstate(session), store};
`

// Config tunes the peer.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Meta and Content define the torrent; with Content the peer seeds,
	// without it the peer leeches.
	Meta    *torrent.MetaInfo
	Content []byte
	// AnnounceURL overrides Meta.Announce ("" disables the tracker
	// flow).
	AnnounceURL string
	// TrackerInterval is the check-in period (default 10s).
	TrackerInterval time.Duration
	// ChokeInterval is the choke recomputation period (default 10s).
	// Per the paper's benchmark modifications all peers stay unchoked.
	ChokeInterval time.Duration
	// KeepAliveInterval is the keep-alive period (default 30s).
	KeepAliveInterval time.Duration
	// PollInterval is the select timeout of the message loop (default
	// 500µs) — the paper's most frequent path is the empty poll.
	PollInterval time.Duration
	// Engine, PoolSize, SourceTimeout, Profiler configure the runtime.
	Engine        runtime.EngineKind
	PoolSize      int
	SourceTimeout time.Duration
	Profiler      runtime.Profiler
}

// Server is a runnable Flux BitTorrent peer.
type Server struct {
	cfg    Config
	prog   *core.Program
	rt     *runtime.Server
	ln     net.Listener
	store  *torrent.Store
	peerID [20]byte

	readyConns chan net.Conn
	inbox      chan *inboxItem

	// peers is guarded by the Flux "peers" constraint.
	peers       map[*Peer]bool
	nextSession uint64

	// requested tracks pieces already requested from some peer while
	// leeching; guarded by the "store" constraint (every toucher holds
	// it).
	requested map[int]bool

	// totalOut counts piece payload bytes served.
	totalOut atomic.Uint64

	// trackerTick paces the tracker flow.
	trackerTick runtime.SourceFunc

	runCtx context.Context

	stopOnce   sync.Once
	stop       chan struct{}
	acceptDone chan struct{}
}

// New compiles the program and prepares the peer.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Meta == nil {
		return nil, errors.New("bittorrent: Config.Meta is required")
	}
	if cfg.TrackerInterval <= 0 {
		cfg.TrackerInterval = 10 * time.Second
	}
	if cfg.ChokeInterval <= 0 {
		cfg.ChokeInterval = 10 * time.Second
	}
	if cfg.KeepAliveInterval <= 0 {
		cfg.KeepAliveInterval = 30 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Microsecond
	}

	astProg, err := parser.Parse("bittorrent.flux", FluxSource)
	if err != nil {
		return nil, fmt.Errorf("bittorrent: parse: %w", err)
	}
	prog, err := core.Build(astProg)
	if err != nil {
		return nil, fmt.Errorf("bittorrent: compile: %w", err)
	}

	var store *torrent.Store
	if cfg.Content != nil {
		store, err = torrent.NewSeeder(cfg.Meta, cfg.Content)
		if err != nil {
			return nil, err
		}
	} else {
		store = torrent.NewLeecher(cfg.Meta)
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:        cfg,
		prog:       prog,
		ln:         ln,
		store:      store,
		readyConns: make(chan net.Conn, 256),
		inbox:      make(chan *inboxItem, 4096),
		peers:      make(map[*Peer]bool),
		requested:  make(map[int]bool),
	}
	if _, err := rand.Read(s.peerID[:]); err != nil {
		ln.Close()
		return nil, err
	}
	copy(s.peerID[:8], "-FLUX01-")
	s.trackerTick = runtime.IntervalSource(cfg.TrackerInterval)

	b := runtime.NewBindings().
		BindSource("Listen", s.listen).
		BindSource("Poll", s.poll).
		BindSource("ChokeTimer", s.timer(cfg.ChokeInterval)).
		BindSource("KeepAliveTimer", s.timer(cfg.KeepAliveInterval)).
		BindSource("TrackerTimer", s.trackerTimer).
		BindNode("SetupConnection", s.setupConnection).
		BindNode("Handshake", s.handshake).
		BindNode("SendBitfield", s.sendBitfield).
		BindNode("DropConn", s.dropConn).
		BindNode("GetClients", s.getClients).
		BindNode("SelectSockets", s.selectSockets).
		BindNode("CheckSockets", s.checkSockets).
		BindNode("ReadMessage", s.readMessage).
		BindNode("MessageDone", s.messageDone).
		BindNode("DropPeer", s.dropPeer).
		BindNode("Bitfield", s.onBitfield).
		BindNode("Have", s.onHave).
		BindNode("Interested", s.onInterested).
		BindNode("Uninterested", s.onUninterested).
		BindNode("Choke", s.onChoke).
		BindNode("Unchoke", s.onUnchoke).
		BindNode("Request", s.onRequest).
		BindNode("Cancel", s.onCancel).
		BindNode("Piece", s.onPiece).
		BindNode("CompletePiece", s.completePiece).
		BindNode("Unregister", s.unregister).
		BindNode("UpdateChokeList", s.updateChokeList).
		BindNode("PickChoked", s.pickChoked).
		BindNode("SendChokeUnchoke", s.sendChokeUnchoke).
		BindNode("SendKeepAlives", s.sendKeepAlives).
		BindNode("CheckinWithTracker", s.checkinWithTracker).
		BindNode("SendRequestToTracker", s.sendRequestToTracker).
		BindNode("GetTrackerResponse", s.getTrackerResponse).
		BindNode("TrackerFailed", s.trackerFailed).
		BindSession("PeerSession", func(rec runtime.Record) uint64 {
			tok := rec[0].(*pollToken)
			if tok.item != nil && tok.item.peer != nil {
				return tok.item.peer.session
			}
			return 0
		}).
		BindPredicate("IsBitfield", kindPred("bitfield")).
		BindPredicate("IsHave", kindPred("have")).
		BindPredicate("IsInterested", kindPred("interested")).
		BindPredicate("IsUninterested", kindPred("uninterested")).
		BindPredicate("IsChoke", kindPred("choke")).
		BindPredicate("IsUnchoke", kindPred("unchoke")).
		BindPredicate("IsRequest", kindPred("request")).
		BindPredicate("IsCancel", kindPred("cancel")).
		BindPredicate("IsPiece", kindPred("piece")).
		BindPredicate("IsClosed", kindPred("closed")).
		BindPredicate("IsPieceComplete", func(v any) bool { return v.(*wireMsg).completed }).
		MarkBlocking("Handshake", "SendBitfield", "Request", "SendKeepAlives",
			"SendRequestToTracker", "SendChokeUnchoke", "CompletePiece")

	rt, err := runtime.New(prog, b,
		runtime.WithEngine(cfg.Engine),
		runtime.WithPoolSize(cfg.PoolSize),
		runtime.WithSourceTimeout(cfg.SourceTimeout),
		runtime.WithProfiler(cfg.Profiler),
	)
	if err != nil {
		ln.Close()
		return nil, err
	}
	s.rt = rt
	return s, nil
}

func kindPred(kind string) runtime.PredicateFunc {
	return func(v any) bool { return v.(*wireMsg).kind == kind }
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Program exposes the compiled program.
func (s *Server) Program() *core.Program { return s.prog }

// Stats exposes runtime counters.
func (s *Server) Stats() *runtime.Stats { return s.rt.Stats() }

// Store exposes the piece store (for completeness checks in tests).
func (s *Server) Store() *torrent.Store { return s.store }

// BytesServed totals piece payload bytes sent to all peers, including
// ones that have disconnected.
func (s *Server) BytesServed() uint64 { return s.totalOut.Load() }

// Start launches the accept loop and the Flux runtime; the peer then
// serves until the context is cancelled or Shutdown is called.
func (s *Server) Start(ctx context.Context) error {
	if err := s.rt.Start(ctx); err != nil {
		return err
	}
	s.runCtx = ctx
	s.stop = make(chan struct{})
	s.acceptDone = make(chan struct{})
	go func() {
		defer close(s.acceptDone)
		for {
			nc, err := s.ln.Accept()
			if err != nil {
				return
			}
			select {
			case s.readyConns <- nc:
			case <-s.stop:
				nc.Close()
				return
			case <-ctx.Done():
				nc.Close()
				return
			}
		}
	}()
	go func() {
		select {
		case <-ctx.Done():
		case <-s.stop:
		}
		s.ln.Close()
	}()
	return nil
}

// Shutdown gracefully stops the peer: the listener closes, Flux sources
// stop admitting, and in-flight flows drain until their terminals or
// ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.stop == nil {
		return runtime.ErrNotStarted
	}
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.rt.Shutdown(ctx)
	<-s.acceptDone
	return err
}

// Wait blocks until the run ends and returns its error.
func (s *Server) Wait() error {
	if s.acceptDone == nil {
		return runtime.ErrNotStarted
	}
	err := s.rt.Wait()
	<-s.acceptDone
	return err
}

// Run serves until the context is cancelled: Start followed by Wait.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	return s.Wait()
}

// ConnectTo dials a remote peer (leecher bootstrap); the connection then
// flows through the same Accept pipeline as inbound peers.
func (s *Server) ConnectTo(addr string) error {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	select {
	case s.readyConns <- nc:
		return nil
	default:
		nc.Close()
		return errors.New("bittorrent: connection backlog full")
	}
}

// --- source nodes ----------------------------------------------------------

func (s *Server) listen(fl *runtime.Flow) (runtime.Record, error) {
	if fl.SourceTimeout > 0 {
		t := time.NewTimer(fl.SourceTimeout)
		defer t.Stop()
		select {
		case nc := <-s.readyConns:
			return runtime.Record{nc}, nil
		case <-t.C:
			return nil, runtime.ErrNoData
		case <-fl.Wake:
			return nil, runtime.ErrNoData
		case <-fl.Ctx.Done():
			return nil, fl.Ctx.Err()
		}
	}
	select {
	case nc := <-s.readyConns:
		return runtime.Record{nc}, nil
	case <-fl.Ctx.Done():
		return nil, fl.Ctx.Err()
	}
}

// poll is the select loop: it returns a ready inbox item, or an empty
// token when the poll interval elapses with nothing ready.
func (s *Server) poll(fl *runtime.Flow) (runtime.Record, error) {
	wait := s.cfg.PollInterval
	if fl.SourceTimeout > 0 && fl.SourceTimeout < wait {
		wait = fl.SourceTimeout
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	if fl.Wake != nil {
		select {
		case item := <-s.inbox:
			return runtime.Record{&pollToken{item: item}}, nil
		case <-t.C:
			return runtime.Record{&pollToken{}}, nil
		case <-fl.Wake:
			// The engine has pending work; yield without consuming the
			// empty-poll path (which would count as a flow).
			return nil, runtime.ErrNoData
		case <-fl.Ctx.Done():
			return nil, fl.Ctx.Err()
		}
	}
	select {
	case item := <-s.inbox:
		return runtime.Record{&pollToken{item: item}}, nil
	case <-t.C:
		return runtime.Record{&pollToken{}}, nil
	case <-fl.Ctx.Done():
		return nil, fl.Ctx.Err()
	}
}

// timer builds a deadline-aware interval source.
func (s *Server) timer(interval time.Duration) runtime.SourceFunc {
	return runtime.IntervalSource(interval)
}

// trackerTimer stops immediately when no tracker is configured.
func (s *Server) trackerTimer(fl *runtime.Flow) (runtime.Record, error) {
	if s.announceURL() == "" {
		return nil, runtime.ErrStop
	}
	return s.trackerTick(fl)
}

func (s *Server) announceURL() string {
	if s.cfg.AnnounceURL != "" {
		return s.cfg.AnnounceURL
	}
	return s.cfg.Meta.Announce
}

// --- accept flow -------------------------------------------------------------

// setupConnection registers the peer under the peers constraint and
// assigns its session id.
func (s *Server) setupConnection(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	nc := in[0].(net.Conn)
	s.nextSession++
	p := &Peer{
		conn:     nc,
		session:  s.nextSession,
		bitfield: torrent.NewBitfield(s.cfg.Meta.NumPieces()),
		choked:   false, // benchmark modification: everyone starts unchoked
	}
	s.peers[p] = true
	return runtime.Record{p}, nil
}

// handshake exchanges and validates handshakes.
func (s *Server) handshake(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	p.conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer p.conn.SetDeadline(time.Time{})
	if err := WriteHandshake(p.conn, s.cfg.Meta.InfoHash, s.peerID); err != nil {
		return nil, err
	}
	infoHash, peerID, err := ReadHandshake(p.conn)
	if err != nil {
		return nil, err
	}
	if infoHash != s.cfg.Meta.InfoHash {
		return nil, errors.New("bittorrent: info hash mismatch")
	}
	p.id = peerID
	return in, nil
}

// sendBitfield announces our pieces and starts the peer's read pump.
func (s *Server) sendBitfield(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	p := in[0].(*Peer)
	bf := s.store.Bitfield()
	if err := p.send(&Message{ID: MsgBitfield, Payload: bf}); err != nil {
		return nil, err
	}
	go s.pump(p)
	return nil, nil
}

// dropConn handles handshake failures: the peer leaves the table.
// It is the error handler for Handshake, so the record is the Accept
// flow's (peerconn); depending on where the failure happened this is the
// raw conn or the registered peer.
func (s *Server) dropConn(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	switch v := in[0].(type) {
	case net.Conn:
		v.Close()
	case *Peer:
		v.close()
		// The peers entry is removed by the Unregister flow when the
		// pump reports the close; handshake failures happen before the
		// pump starts, so remove eagerly via the inbox.
		select {
		case s.inbox <- &inboxItem{peer: v, err: io.EOF}:
		default:
		}
	}
	return nil, nil
}

// pump reads raw frames into the inbox until the connection dies — the
// per-socket half of the readiness substrate.
func (s *Server) pump(p *Peer) {
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(p.conn, lenBuf[:]); err != nil {
			s.inbox <- &inboxItem{peer: p, err: err}
			return
		}
		length := binary.BigEndian.Uint32(lenBuf[:])
		if length == 0 {
			s.inbox <- &inboxItem{peer: p, raw: &rawFrame{}}
			continue
		}
		if length > maxFrame {
			s.inbox <- &inboxItem{peer: p, err: fmt.Errorf("frame too large: %d", length)}
			return
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(p.conn, body); err != nil {
			s.inbox <- &inboxItem{peer: p, err: err}
			return
		}
		p.bytesIn.Add(uint64(length))
		s.inbox <- &inboxItem{peer: p, raw: &rawFrame{body: body}}
	}
}
