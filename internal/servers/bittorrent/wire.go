// Package bittorrent implements the paper's peer-to-peer application
// (§4.3): a BitTorrent peer whose protocol logic is a Flux program
// following Figure 7. The wire protocol, handshake, and message framing
// live in this file; the substrate packages bencode and torrent provide
// metainfo and piece storage.
package bittorrent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/flux-lang/flux/internal/torrent"
)

// Wire message IDs (BEP 3).
const (
	MsgChoke         = 0
	MsgUnchoke       = 1
	MsgInterested    = 2
	MsgNotInterested = 3
	MsgHave          = 4
	MsgBitfield      = 5
	MsgRequest       = 6
	MsgPiece         = 7
	MsgCancel        = 8
	// msgKeepAlive is the zero-length frame; it has no ID byte.
)

// protocolString is the BitTorrent handshake magic.
const protocolString = "BitTorrent protocol"

// Message is one decoded wire message. KeepAlive is represented by
// ID == -1.
type Message struct {
	ID      int
	Index   uint32 // have, request, piece, cancel
	Begin   uint32 // request, piece, cancel
	Length  uint32 // request, cancel
	Payload []byte // piece data or raw bitfield
}

// KeepAlive reports whether this is the zero-length keep-alive frame.
func (m *Message) KeepAlive() bool { return m.ID == -1 }

// Kind renders the message type for dispatch patterns and diagnostics.
func (m *Message) Kind() string {
	if m.KeepAlive() {
		return "keepalive"
	}
	switch m.ID {
	case MsgChoke:
		return "choke"
	case MsgUnchoke:
		return "unchoke"
	case MsgInterested:
		return "interested"
	case MsgNotInterested:
		return "uninterested"
	case MsgHave:
		return "have"
	case MsgBitfield:
		return "bitfield"
	case MsgRequest:
		return "request"
	case MsgPiece:
		return "piece"
	case MsgCancel:
		return "cancel"
	default:
		return fmt.Sprintf("unknown(%d)", m.ID)
	}
}

// WriteHandshake sends the 68-byte BitTorrent handshake.
func WriteHandshake(w io.Writer, infoHash, peerID [20]byte) error {
	buf := make([]byte, 0, 68)
	buf = append(buf, byte(len(protocolString)))
	buf = append(buf, protocolString...)
	buf = append(buf, make([]byte, 8)...) // reserved
	buf = append(buf, infoHash[:]...)
	buf = append(buf, peerID[:]...)
	_, err := w.Write(buf)
	return err
}

// ReadHandshake parses and validates the peer's handshake.
func ReadHandshake(r io.Reader) (infoHash, peerID [20]byte, err error) {
	var lenByte [1]byte
	if _, err = io.ReadFull(r, lenByte[:]); err != nil {
		return
	}
	if int(lenByte[0]) != len(protocolString) {
		err = fmt.Errorf("bittorrent: bad protocol string length %d", lenByte[0])
		return
	}
	rest := make([]byte, len(protocolString)+8+20+20)
	if _, err = io.ReadFull(r, rest); err != nil {
		return
	}
	if string(rest[:len(protocolString)]) != protocolString {
		err = errors.New("bittorrent: bad protocol string")
		return
	}
	copy(infoHash[:], rest[len(protocolString)+8:])
	copy(peerID[:], rest[len(protocolString)+8+20:])
	return
}

// WriteMessage frames and sends one message.
func WriteMessage(w io.Writer, m *Message) error {
	if m.KeepAlive() {
		_, err := w.Write([]byte{0, 0, 0, 0})
		return err
	}
	var body []byte
	switch m.ID {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		body = []byte{byte(m.ID)}
	case MsgHave:
		body = make([]byte, 5)
		body[0] = MsgHave
		binary.BigEndian.PutUint32(body[1:], m.Index)
	case MsgBitfield:
		body = append([]byte{MsgBitfield}, m.Payload...)
	case MsgRequest, MsgCancel:
		body = make([]byte, 13)
		body[0] = byte(m.ID)
		binary.BigEndian.PutUint32(body[1:5], m.Index)
		binary.BigEndian.PutUint32(body[5:9], m.Begin)
		binary.BigEndian.PutUint32(body[9:13], m.Length)
	case MsgPiece:
		body = make([]byte, 9+len(m.Payload))
		body[0] = MsgPiece
		binary.BigEndian.PutUint32(body[1:5], m.Index)
		binary.BigEndian.PutUint32(body[5:9], m.Begin)
		copy(body[9:], m.Payload)
	default:
		return fmt.Errorf("bittorrent: cannot encode message id %d", m.ID)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	_, err := w.Write(frame)
	return err
}

// maxFrame bounds incoming frames: one block plus headers is the largest
// legitimate message.
const maxFrame = torrent.BlockSize + 1024

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length == 0 {
		return &Message{ID: -1}, nil
	}
	if length > maxFrame {
		return nil, fmt.Errorf("bittorrent: frame of %d bytes exceeds limit", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return ParseMessageBody(body)
}

// ParseMessageBody decodes a frame body (everything after the length
// prefix) into a Message.
func ParseMessageBody(body []byte) (*Message, error) {
	if len(body) == 0 {
		return &Message{ID: -1}, nil
	}
	m := &Message{ID: int(body[0])}
	body = body[1:]
	switch m.ID {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		// no payload
	case MsgHave:
		if len(body) != 4 {
			return nil, errors.New("bittorrent: malformed have")
		}
		m.Index = binary.BigEndian.Uint32(body)
	case MsgBitfield:
		m.Payload = body
	case MsgRequest, MsgCancel:
		if len(body) != 12 {
			return nil, errors.New("bittorrent: malformed request/cancel")
		}
		m.Index = binary.BigEndian.Uint32(body[0:4])
		m.Begin = binary.BigEndian.Uint32(body[4:8])
		m.Length = binary.BigEndian.Uint32(body[8:12])
	case MsgPiece:
		if len(body) < 8 {
			return nil, errors.New("bittorrent: malformed piece")
		}
		m.Index = binary.BigEndian.Uint32(body[0:4])
		m.Begin = binary.BigEndian.Uint32(body[4:8])
		m.Payload = body[8:]
	default:
		return nil, fmt.Errorf("bittorrent: unknown message id %d", m.ID)
	}
	return m, nil
}

// readMessageDeadline reads one message with a read deadline.
func readMessageDeadline(conn net.Conn, d time.Duration) (*Message, error) {
	if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	defer conn.SetReadDeadline(time.Time{})
	return ReadMessage(conn)
}
