// Package imageserver is the paper's running example (§2, Figure 2): an
// HTTP image-compression server that stores images as PPM, compresses
// requested scales to JPEG on demand, and caches recent compressions in
// an LFU cache with reference counts guarded by a Flux atomicity
// constraint.
//
// The Flux program below is Figure 2 verbatim (modulo the conn type
// standing in for the int socket). The paper's five stock photographs
// are replaced by synthetic PPM images; a calibration knob adds CPU work
// to Compress so the per-request cost can be set to match the paper's
// ~0.5 s/image compression (scaled down for test budgets) — the
// service-time distribution is what the Figure 6 prediction experiment
// depends on.
package imageserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"image/jpeg"
	"net"
	"strconv"
	"strings"
	"time"

	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/lang/parser"
	"github.com/flux-lang/flux/internal/lfu"
	"github.com/flux-lang/flux/internal/netkit"
	"github.com/flux-lang/flux/internal/ppm"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/httpkit"
	"github.com/flux-lang/flux/internal/telemetry"
)

// FluxSource is Figure 2 of the paper.
const FluxSource = `
// concrete node signatures
Listen () => (conn socket);
ReadRequest (conn socket) => (conn socket, bool close, image_tag *request);
CheckCache (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request);
ReadInFromDisk (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request, rgb *rgb_data);
Compress (conn socket, bool close, image_tag *request, rgb *rgb_data)
  => (conn socket, bool close, image_tag *request);
StoreInCache (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request);
Write (conn socket, bool close, image_tag *request)
  => (conn socket, bool close, image_tag *request);
Complete (conn socket, bool close, image_tag *request) => ();
FourOhFour (conn socket, bool close, image_tag *request) => ();

// source node
source Listen => Image;

// abstract node
Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

// predicate type & dispatch
typedef hit TestInCache;
Handler:[_, _, hit] = ;
Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

// error handler
handle error ReadInFromDisk => FourOhFour;

// atomicity constraints
atomic CheckCache:{cache};
atomic StoreInCache:{cache};
atomic Complete:{cache};
`

// Tag is the image_tag struct of Figure 2: the parsed request plus the
// cache interaction state.
type Tag struct {
	Name  string // image name, e.g. "img3"
	Scale int    // 1..8, meaning Scale/8 of full size
	key   string
	hit   bool
	jpeg  []byte
	// stored records that this flow inserted the entry (so Complete
	// releases exactly the references this flow took).
	stored bool
}

// Config tunes the server.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Images is the library size (default 5, the paper's count).
	Images int
	// Width, Height are full-size image dimensions (default 256x192;
	// the paper's photos were larger, the knob below calibrates cost).
	Width, Height int
	// CacheBytes bounds the compression cache (default 32 MB).
	CacheBytes int64
	// CompressWork adds CPU spin to Compress to calibrate per-request
	// cost (the paper's compression averaged 0.5 s; benchmarks here use
	// milliseconds). Zero means JPEG encoding cost only.
	CompressWork time.Duration
	// Engine, PoolSize, SourceTimeout, Profiler configure the runtime.
	Engine        runtime.EngineKind
	PoolSize      int
	SourceTimeout time.Duration
	Profiler      runtime.Profiler
	// Observer, when non-nil, joins the runtime's observer plane (flow
	// terminals, queue depths, connection-plane shed events).
	Observer runtime.Observer
	// Telemetry, when non-nil, rides the observer plane alongside
	// Observer and receives the connection plane's admission counters.
	Telemetry *telemetry.Telemetry
	// AdmitWatermark, when > 0, sheds fresh connections with a 503 once
	// the engine's sampled queue depths sum past it. 0 admits
	// unboundedly.
	AdmitWatermark int
	// MaxConns, when > 0, caps live connections; accepts beyond it are
	// shed with a 503.
	MaxConns int
	// QueueSample overrides the queue-depth sampling period (default
	// 5ms with an AdmitWatermark — admission control needs a fresh
	// signal — else the runtime's 100ms).
	QueueSample time.Duration
	// WriteTimeout, when > 0, bounds every response write; a dead or
	// zero-window client fails the write, the connection is torn down,
	// and the shed is counted on the Observer plane.
	WriteTimeout time.Duration
	// ListenShards, when > 1, opens that many SO_REUSEPORT accept
	// shards; platforms without SO_REUSEPORT fall back to a single
	// listener.
	ListenShards int
}

// Server is a runnable Flux image server, driven through the runtime's
// lifecycle: Start, Shutdown, Wait — or Run. Connections are accepted
// and admitted by the shared connection plane (internal/netkit),
// entering the graph exclusively through the runtime's external-
// admission path.
type Server struct {
	cfg     Config
	prog    *core.Program
	rt      *runtime.Server
	cp      *netkit.FluxPlane
	cache   *lfu.Cache
	library map[string]*ppm.Image
}

// New compiles Figure 2, synthesizes the image library, and opens the
// listener.
func New(cfg Config) (*Server, error) {
	if cfg.Images <= 0 {
		cfg.Images = 5
	}
	if cfg.Width <= 0 {
		cfg.Width = 256
	}
	if cfg.Height <= 0 {
		cfg.Height = 192
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 32 << 20
	}

	astProg, err := parser.Parse("imageserver.flux", FluxSource)
	if err != nil {
		return nil, fmt.Errorf("imageserver: parse: %w", err)
	}
	prog, err := core.Build(astProg)
	if err != nil {
		return nil, fmt.Errorf("imageserver: compile: %w", err)
	}

	if cfg.QueueSample <= 0 && cfg.AdmitWatermark > 0 {
		cfg.QueueSample = 5 * time.Millisecond
	}
	s := &Server{
		cfg:     cfg,
		prog:    prog,
		cache:   lfu.New(cfg.CacheBytes),
		library: make(map[string]*ppm.Image, cfg.Images),
	}
	for i := 0; i < cfg.Images; i++ {
		s.library[fmt.Sprintf("img%d", i)] = ppm.Synthetic(cfg.Width, cfg.Height, int64(i+1))
	}

	b := runtime.NewBindings().
		BindSource("Listen", s.listen).
		BindNode("ReadRequest", s.readRequest).
		BindNode("CheckCache", s.checkCache).
		BindNode("ReadInFromDisk", s.readInFromDisk).
		BindNode("Compress", s.compress).
		BindNode("StoreInCache", s.storeInCache).
		BindNode("Write", s.write).
		BindNode("Complete", s.complete).
		BindNode("FourOhFour", s.fourOhFour).
		BindPredicate("TestInCache", func(v any) bool { return v.(*Tag).hit }).
		MarkBlocking("ReadRequest", "Write")

	if cfg.Telemetry != nil {
		cfg.Observer = runtime.MultiObserver(cfg.Observer, cfg.Telemetry)
	}
	gate, obs := netkit.NewGateObserver(cfg.AdmitWatermark, cfg.Observer)
	rt, err := runtime.New(prog, b,
		runtime.WithEngine(cfg.Engine),
		runtime.WithPoolSize(cfg.PoolSize),
		runtime.WithSourceTimeout(cfg.SourceTimeout),
		runtime.WithProfiler(cfg.Profiler),
		runtime.WithObserver(obs),
		runtime.WithQueueSampleInterval(cfg.QueueSample),
		// Admission is external: the connection plane injects every flow.
		runtime.WithKeepAlive(),
	)
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.cp, err = netkit.NewFluxPlane(rt, "Listen", netkit.Config{
		Addr:         cfg.Addr,
		Gate:         gate,
		MaxConns:     cfg.MaxConns,
		ShedResponse: httpkit.Unavailable(),
		WriteTimeout: cfg.WriteTimeout,
		ListenShards: cfg.ListenShards,
		Observer:     obs,
		Name:         "imageserver",
	})
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil {
		pl := s.cp.Plane()
		cfg.Telemetry.RegisterConns("imageserver", func() telemetry.ConnStats {
			st := pl.Stats()
			return telemetry.ConnStats{Accepted: st.Accepted, Admitted: st.Admitted, Shed: st.Shed, Live: st.Live}
		})
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.cp.Addr() }

// Program exposes the compiled program.
func (s *Server) Program() *core.Program { return s.prog }

// Stats exposes the runtime counters.
func (s *Server) Stats() *runtime.Stats { return s.rt.Stats() }

// CacheStats exposes hit/miss/eviction counters.
func (s *Server) CacheStats() (hits, misses, evictions uint64) { return s.cache.Stats() }

// Start launches the Flux runtime and the connection plane's accept
// loop; the server then serves until the context is cancelled or
// Shutdown is called.
func (s *Server) Start(ctx context.Context) error { return s.cp.Start(ctx) }

// Shutdown gracefully stops the server: the plane stops accepting and
// interrupts live connections, then the Flux runtime stops admitting
// and in-flight requests drain until their terminals or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.cp.Shutdown(ctx) }

// Wait blocks until the run ends and returns its error.
func (s *Server) Wait() error { return s.cp.Wait() }

// Run serves until the context is cancelled: Start followed by Wait.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	return s.Wait()
}

// --- node implementations --------------------------------------------------

// listen is the graph's source node. The connection plane owns accept
// and admission (every flow enters through Inject), so the source
// retires immediately; the runtime's keep-alive mode holds the server
// open.
func (s *Server) listen(fl *runtime.Flow) (runtime.Record, error) {
	return nil, runtime.ErrStop
}

// readRequest parses "GET /<name>/<scale> HTTP/1.1": one request per
// connection (close=true always, the image protocol is single-shot).
// The connection's buffered reader is pooled plane state, not a fresh
// allocation per request.
func (s *Server) readRequest(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	br := c.Reader()
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return nil, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		c.Close()
		return nil, fmt.Errorf("imageserver: malformed request %q", line)
	}
	// Drain headers until the blank line.
	for {
		h, err := br.ReadString('\n')
		if err != nil || strings.TrimSpace(h) == "" {
			break
		}
	}
	parts := strings.Split(strings.TrimPrefix(fields[1], "/"), "/")
	tag := &Tag{Scale: 8}
	if len(parts) >= 1 {
		tag.Name = parts[0]
	}
	if len(parts) >= 2 {
		if sc, err := strconv.Atoi(parts[1]); err == nil && sc >= 1 && sc <= 8 {
			tag.Scale = sc
		}
	}
	tag.key = fmt.Sprintf("%s@%d", tag.Name, tag.Scale)
	return runtime.Record{c, true, tag}, nil
}

// checkCache increments the cached item's reference count on a hit
// (§2.5: "CheckCache, which increments a reference count").
func (s *Server) checkCache(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tag := in[2].(*Tag)
	if data, ok := s.cache.Get(tag.key); ok {
		tag.hit = true
		tag.jpeg = data
	}
	return in, nil
}

// readInFromDisk fetches the stored PPM; a missing image is the error
// the FourOhFour handler catches.
func (s *Server) readInFromDisk(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tag := in[2].(*Tag)
	img, ok := s.library[tag.Name]
	if !ok {
		return nil, fmt.Errorf("imageserver: no such image %q", tag.Name)
	}
	// The library stores PPM; decoding is part of the read, producing
	// the rgb_data the signature declares.
	return runtime.Record{in[0], in[1], tag, img}, nil
}

// compress scales and JPEG-encodes, plus the calibration spin.
func (s *Server) compress(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tag := in[2].(*Tag)
	img := in[3].(*ppm.Image)
	w := s.cfg.Width * tag.Scale / 8
	h := s.cfg.Height * tag.Scale / 8
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	scaled := img.Scale(w, h)
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, scaled.ToRGBA(), &jpeg.Options{Quality: 80}); err != nil {
		return nil, err
	}
	if s.cfg.CompressWork > 0 {
		spin(s.cfg.CompressWork)
	}
	tag.jpeg = buf.Bytes()
	return runtime.Record{in[0], in[1], tag}, nil
}

// spin burns CPU for roughly d — compression stand-in work that loads a
// processor the way libjpeg does (a sleep would not).
func spin(d time.Duration) {
	end := time.Now().Add(d)
	x := uint64(88172645463325252)
	for time.Now().Before(end) {
		for i := 0; i < 1024; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	_ = x
}

// storeInCache publishes the compression, evicting LFU zero-reference
// entries as needed (§2.5).
func (s *Server) storeInCache(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	tag := in[2].(*Tag)
	s.cache.Put(tag.key, tag.jpeg)
	tag.stored = true
	return in, nil
}

// write sends the JPEG response: the immutable header blob and the
// cached JPEG go out in one writev(2) — the response is never assembled
// into a contiguous buffer, so cache hits cost zero allocations here.
func (s *Server) write(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	tag := in[2].(*Tag)
	head := httpkit.StaticHeader(200, "OK", "image/jpeg", len(tag.jpeg), false)
	if err := c.WriteVec(head, tag.jpeg); err != nil {
		// Figure 2 declares no handler for Write, so the flow will
		// terminate here; release the flow's cache reference so a
		// vanished client cannot pin the entry. A popped write deadline
		// is the server shedding a dead client — count it.
		if tag.hit || tag.stored {
			s.cache.Release(tag.key)
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.cp.CountShed("write-timeout")
		}
		c.Close()
		return nil, err
	}
	return in, nil
}

// complete decrements the reference count and closes (§2.5: "Complete,
// which decrements the cached image's reference count").
func (s *Server) complete(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	closeConn := in[1].(bool)
	tag := in[2].(*Tag)
	if tag.hit || tag.stored {
		s.cache.Release(tag.key)
	}
	if closeConn {
		c.Close()
	}
	return nil, nil
}

// fourOhFour answers a missing image.
func (s *Server) fourOhFour(fl *runtime.Flow, in runtime.Record) (runtime.Record, error) {
	c := in[0].(*netkit.Conn)
	body := []byte("image not found")
	_ = c.WriteVec(httpkit.StaticHeader(404, "Not Found", "text/plain", len(body), false), body)
	c.Close()
	return nil, nil
}
