package imageserver

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"image/jpeg"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/profile"
	"github.com/flux-lang/flux/internal/runtime"
)

func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
	stop := func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not stop")
		}
	}
	return s, s.Addr(), stop
}

// fetch gets /img<k>/<scale>, returning status and body.
func fetch(t *testing.T, addr string, img, scale int) (int, []byte) {
	t.Helper()
	return fetchPath(t, addr, fmt.Sprintf("/img%d/%d", img, scale))
}

func fetchPath(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", path)
	br := bufio.NewReader(conn)
	statusLine, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	fields := strings.Fields(statusLine)
	status, _ := strconv.Atoi(fields[1])
	clen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("headers: %v", err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(k, "Content-Length") {
			clen, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	body := make([]byte, clen)
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatalf("body: %v", err)
	}
	return status, body
}

func TestServesValidJPEG(t *testing.T) {
	_, addr, stop := startServer(t, Config{Engine: runtime.ThreadPerFlow})
	defer stop()

	status, body := fetch(t, addr, 0, 8)
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	cfg, err := jpeg.DecodeConfig(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a JPEG: %v", err)
	}
	if cfg.Width != 256 || cfg.Height != 192 {
		t.Errorf("full-size dims = %dx%d", cfg.Width, cfg.Height)
	}
}

func TestScales(t *testing.T) {
	_, addr, stop := startServer(t, Config{Engine: runtime.ThreadPool, PoolSize: 4})
	defer stop()
	for scale := 1; scale <= 8; scale++ {
		status, body := fetch(t, addr, 1, scale)
		if status != 200 {
			t.Fatalf("scale %d: status %d", scale, status)
		}
		cfg, err := jpeg.DecodeConfig(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		if want := 256 * scale / 8; cfg.Width != want {
			t.Errorf("scale %d: width = %d, want %d", scale, cfg.Width, want)
		}
	}
}

func TestMissingImage404(t *testing.T) {
	_, addr, stop := startServer(t, Config{Engine: runtime.ThreadPerFlow})
	defer stop()
	status, _ := fetchPath(t, addr, "/nosuchimage/4")
	if status != 404 {
		t.Errorf("status = %d", status)
	}
}

func TestCacheHitSecondFetch(t *testing.T) {
	s, addr, stop := startServer(t, Config{Engine: runtime.ThreadPerFlow})
	defer stop()
	_, first := fetch(t, addr, 2, 4)
	_, second := fetch(t, addr, 2, 4)
	if !bytes.Equal(first, second) {
		t.Error("cached response differs from computed response")
	}
	hits, misses, _ := s.CacheStats()
	if hits != 1 || misses < 1 {
		t.Errorf("cache hits=%d misses=%d", hits, misses)
	}
}

func TestAllEnginesServe(t *testing.T) {
	for _, kind := range []runtime.EngineKind{runtime.ThreadPerFlow, runtime.ThreadPool, runtime.EventDriven} {
		t.Run(kind.String(), func(t *testing.T) {
			_, addr, stop := startServer(t, Config{
				Engine:        kind,
				PoolSize:      4,
				SourceTimeout: 2 * time.Millisecond,
			})
			defer stop()
			status, _ := fetch(t, addr, 0, 2)
			if status != 200 {
				t.Errorf("status = %d", status)
			}
		})
	}
}

func TestHitAndMissPathsProfiled(t *testing.T) {
	prof := profile.New()
	s, addr, stop := startServer(t, Config{Engine: runtime.ThreadPerFlow, Profiler: prof})
	fetch(t, addr, 3, 2) // miss
	fetch(t, addr, 3, 2) // hit
	stop()

	g := s.Program().Graphs["Listen"]
	var sawHit, sawMiss bool
	for _, r := range prof.HotPaths(g, profile.ByCount, 0) {
		if r.Label == "Listen -> ReadRequest -> CheckCache -> Write -> Complete" {
			sawHit = true
		}
		if strings.Contains(r.Label, "ReadInFromDisk -> Compress -> StoreInCache") {
			sawMiss = true
		}
	}
	if !sawHit || !sawMiss {
		t.Errorf("hit=%v miss=%v:\n%s", sawHit, sawMiss, prof.Report(g, profile.ByCount, 10))
	}
}

func TestFixedRateLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	_, addr, stop := startServer(t, Config{Engine: runtime.ThreadPool, PoolSize: 8})
	defer stop()
	res := loadgen.RunImageLoad(context.Background(), loadgen.ImageClientConfig{
		Addr:     addr,
		Rate:     50,
		Duration: 600 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     1,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests completed: %+v", res)
	}
}

func TestCompressWorkCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	_, addr, stop := startServer(t, Config{
		Engine:       runtime.ThreadPerFlow,
		CompressWork: 30 * time.Millisecond,
		CacheBytes:   1, // force misses
	})
	defer stop()
	start := time.Now()
	fetch(t, addr, 0, 1)
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("compress work not applied: %v", elapsed)
	}
}
