package main

import (
	"strings"
	"testing"
)

const oldBench = `
goos: linux
BenchmarkFlowOverhead/thread-8         	 1000000	      1100.0 ns/op	      72 B/op	       1 allocs/op
BenchmarkFlowOverhead/thread-8         	 1000000	      1050.0 ns/op	      70 B/op	       1 allocs/op
BenchmarkFlowOverhead/threadpool-8     	 5000000	       240.0 ns/op	      35 B/op	       0 allocs/op
BenchmarkFlowOverhead/threadpool-8     	 5000000	       232.0 ns/op	      35 B/op	       0 allocs/op
BenchmarkFlowOverhead/event-8          	 4000000	       271.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkTiny-8                        	90000000	        12.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

func parseStr(t *testing.T, s string) map[string]*result {
	t.Helper()
	m, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseTakesMinNsMaxAllocs(t *testing.T) {
	m := parseStr(t, oldBench)
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(m), m)
	}
	th := m["BenchmarkFlowOverhead/thread"]
	if th == nil || th.ns != 1050.0 || th.allocs != 1 {
		t.Errorf("thread = %+v, want min ns 1050 / allocs 1", th)
	}
	tp := m["BenchmarkFlowOverhead/threadpool"]
	if tp == nil || tp.ns != 232.0 || tp.allocs != 0 {
		t.Errorf("threadpool = %+v", tp)
	}
}

func TestCompareFlagsTimeRegression(t *testing.T) {
	old := parseStr(t, oldBench)
	cur := parseStr(t, strings.ReplaceAll(oldBench, "271.0 ns/op", "340.0 ns/op"))
	var sb strings.Builder
	if n := compare(old, cur, 0.10, 50, &sb); n != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION(time)") {
		t.Errorf("report missing time regression:\n%s", sb.String())
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old := parseStr(t, oldBench)
	cur := parseStr(t, strings.ReplaceAll(oldBench,
		"271.0 ns/op	       0 B/op	       0 allocs/op",
		"271.0 ns/op	      16 B/op	       1 allocs/op"))
	var sb strings.Builder
	if n := compare(old, cur, 0.10, 50, &sb); n != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION(allocs") {
		t.Errorf("report missing alloc regression:\n%s", sb.String())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := parseStr(t, oldBench)
	cur := parseStr(t, strings.ReplaceAll(oldBench, "271.0 ns/op", "290.0 ns/op")) // +7%
	var sb strings.Builder
	if n := compare(old, cur, 0.10, 50, &sb); n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, sb.String())
	}
}

func TestCompareIgnoresNoiseFloor(t *testing.T) {
	old := parseStr(t, oldBench)
	// +50% on a 12ns benchmark: below the noise floor, judged on allocs
	// only.
	cur := parseStr(t, strings.ReplaceAll(oldBench, "12.0 ns/op", "18.0 ns/op"))
	var sb strings.Builder
	if n := compare(old, cur, 0.10, 50, &sb); n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, sb.String())
	}
}

func TestCompareAddedRemovedNeverFail(t *testing.T) {
	old := parseStr(t, oldBench)
	cur := parseStr(t, oldBench+`
BenchmarkBrandNew-8  1000  999.0 ns/op  0 B/op  0 allocs/op
`)
	delete(cur, "BenchmarkTiny")
	var sb strings.Builder
	if n := compare(old, cur, 0.10, 50, &sb); n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "gone") || !strings.Contains(out, "BenchmarkBrandNew") {
		t.Errorf("report missing added/removed rows:\n%s", out)
	}
}
