// Command benchdiff compares two `go test -bench` outputs and fails on
// hot-path regressions: ns/op above a threshold, or any increase in
// allocs/op. It is the CI gate keeping the runtime's zero-allocation
// flow path honest — a self-contained benchstat substitute with a
// pass/fail exit code, needing nothing outside the repository.
//
//	go test -run=NONE -bench=. -benchmem -count=5 ./internal/runtime/ > old.txt   # at the base commit
//	go test -run=NONE -bench=. -benchmem -count=5 ./internal/runtime/ > new.txt   # at HEAD
//	go run ./cmd/benchdiff -old old.txt -new new.txt -threshold 0.10
//
// Each benchmark's repetitions collapse to the minimum ns/op and the
// maximum allocs/op: the minimum time is the least-noisy estimate of
// the code's true cost, while allocations are deterministic and any
// repetition allocating is a real regression.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// result aggregates one benchmark's repetitions.
type result struct {
	ns     float64
	allocs float64
	seen   bool
}

// benchLine matches "BenchmarkName-8  1000  123.4 ns/op  0 B/op  0 allocs/op"
// (the -procs suffix, B/op and allocs/op columns optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func parse(r io.Reader) (map[string]*result, error) {
	out := make(map[string]*result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		allocs := 0.0
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		res := out[name]
		if res == nil {
			res = &result{ns: ns, allocs: allocs, seen: true}
			out[name] = res
			continue
		}
		if ns < res.ns {
			res.ns = ns
		}
		if allocs > res.allocs {
			res.allocs = allocs
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// compare reports regressions of new against old. Benchmarks present in
// only one file are reported but never fail the run (they were added or
// removed by the change under review).
func compare(old, new map[string]*result, threshold, minNs float64, w io.Writer) (regressions int) {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-55s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o := old[name]
		n, ok := new[name]
		if !ok {
			fmt.Fprintf(w, "%-55s %12.1f %12s %8s\n", name, o.ns, "gone", "")
			continue
		}
		delta := 0.0
		if o.ns > 0 {
			delta = (n.ns - o.ns) / o.ns
		}
		verdict := ""
		// Sub-minNs benchmarks are timer-noise territory; judge them on
		// allocations only.
		if n.ns > o.ns*(1+threshold) && o.ns >= minNs {
			verdict = "  REGRESSION(time)"
			regressions++
		}
		if n.allocs > o.allocs {
			verdict += fmt.Sprintf("  REGRESSION(allocs %v -> %v)", o.allocs, n.allocs)
			regressions++
		}
		fmt.Fprintf(w, "%-55s %12.1f %12.1f %+7.1f%%%s\n", name, o.ns, n.ns, 100*delta, verdict)
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			fmt.Fprintf(w, "%-55s %12s %12.1f %8s\n", name, "new", new[name].ns, "")
		}
	}
	return regressions
}

func main() {
	oldPath := flag.String("old", "", "benchmark output at the base commit")
	newPath := flag.String("new", "", "benchmark output at the candidate commit")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op growth")
	minNs := flag.Float64("min-ns", 50, "ignore time deltas on benchmarks faster than this (noise floor)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old old.txt -new new.txt [-threshold 0.10]")
		os.Exit(2)
	}
	old, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in -new; did the candidate bench run fail?")
		os.Exit(2)
	}
	if len(old) == 0 {
		// The base commit has no matching benchmarks (renamed, or it
		// predates them): nothing to compare is not a regression.
		fmt.Println("benchdiff: no benchmark lines in -old (base has no matching benchmarks); nothing to compare")
		return
	}
	if n := compare(old, cur, *threshold, *minNs, os.Stdout); n > 0 {
		fmt.Printf("\n%d regression(s) beyond +%.0f%% ns/op or allocs/op growth\n", n, 100**threshold)
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}
