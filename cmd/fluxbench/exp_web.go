package main

import (
	"context"
	"fmt"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/knotweb"
	"github.com/flux-lang/flux/internal/servers/baseline/sedaweb"
	"github.com/flux-lang/flux/internal/servers/webserver"
)

// webTarget abstracts "a web server listening somewhere" across the
// Flux engines and the two baselines.
type webTarget struct {
	name  string
	start func(files *loadgen.FileSet) (addr string, stop func(), err error)
}

// expFigure3 regenerates Figure 3: throughput and mean latency versus
// simultaneous clients for the three Flux web servers, the knot-like
// threaded baseline, and the haboob-like staged baseline.
//
// The paper's shape: flux-threadpool ~ flux-event ~ knot at the top,
// haboob notably below, flux thread-per-client worst as clients grow;
// the event server shows a latency hiccup at low client counts.
func expFigure3(cfg benchConfig) error {
	clients := []int{1, 4, 16, 64, 128}
	duration := 4 * time.Second
	warmup := time.Second
	if cfg.quick {
		clients = []int{1, 8, 32}
		duration = 1500 * time.Millisecond
		warmup = 300 * time.Millisecond
	}

	files := loadgen.NewFileSet(2)
	targets := webTargets(files)

	fmt.Printf("SPECweb99-like static load, 5 requests per keep-alive connection, corpus %d MB\n\n",
		files.TotalBytes()>>20)
	fmt.Printf("%-16s", "clients")
	for _, c := range clients {
		fmt.Printf("%14d", c)
	}
	fmt.Println()

	type row struct {
		tput []float64
		lat  []time.Duration
	}
	results := make(map[string]*row)

	for _, tgt := range targets {
		r := &row{}
		for _, c := range clients {
			addr, stop, err := tgt.start(files)
			if err != nil {
				return fmt.Errorf("%s: %w", tgt.name, err)
			}
			res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
				Addr:     addr,
				Clients:  c,
				Files:    files,
				Duration: duration,
				Warmup:   warmup,
				Seed:     101,
			})
			stop()
			r.tput = append(r.tput, res.Throughput)
			r.lat = append(r.lat, res.Latency.Mean)
		}
		results[tgt.name] = r
	}

	fmt.Println("throughput (requests/sec):")
	for _, tgt := range targets {
		fmt.Printf("%-16s", tgt.name)
		for _, v := range results[tgt.name].tput {
			fmt.Printf("%14.0f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nmean latency:")
	for _, tgt := range targets {
		fmt.Printf("%-16s", tgt.name)
		for _, v := range results[tgt.name].lat {
			fmt.Printf("%14s", v.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\npaper (Figure 3): knot ~ flux-threadpool ~ flux-event > haboob; flux-thread worst;")
	fmt.Println("event server latency elevated at few clients (source poll timeout), converging under load")
	return nil
}

// lifecycleServer is the Start/Shutdown surface every target — Flux or
// baseline — now exposes; the harness drives them uniformly.
type lifecycleServer interface {
	Start(ctx context.Context) error
	Shutdown(ctx context.Context) error
}

// startTarget starts a server and returns the stop hook: a graceful
// shutdown bounded by a drain deadline.
func startTarget(srv lifecycleServer) (func(), error) {
	if err := srv.Start(context.Background()); err != nil {
		return nil, err
	}
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}, nil
}

func webTargets(files *loadgen.FileSet) []webTarget {
	fluxStart := func(kind flux.EngineKind) func(*loadgen.FileSet) (string, func(), error) {
		return func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := webserver.New(webserver.Config{
				Files:         files,
				Engine:        kind,
				PoolSize:      64,
				SourceTimeout: 20 * time.Millisecond,
			})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}
	}
	return []webTarget{
		{"flux-thread", fluxStart(flux.ThreadPerFlow)},
		{"flux-threadpool", fluxStart(flux.ThreadPool)},
		{"flux-event", fluxStart(flux.EventDriven)},
		{"flux-steal", fluxStart(flux.WorkStealing)},
		{"knot-like", func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := knotweb.New(knotweb.Config{Files: files})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
		{"haboob-like", func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := sedaweb.New(sedaweb.Config{Files: files, WorkersPerStage: 4, QueueDepth: 64})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
	}
}
