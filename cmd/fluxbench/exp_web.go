package main

import (
	"context"
	"fmt"
	"os"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/knotweb"
	"github.com/flux-lang/flux/internal/servers/baseline/sedaweb"
	"github.com/flux-lang/flux/internal/servers/webserver"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript"
)

// webTarget abstracts "a web server listening somewhere" across the
// Flux engines and the two baselines.
type webTarget struct {
	name  string
	start func(files *loadgen.FileSet) (addr string, stop func(), err error)
}

// runWebSweep starts each target once per client count, drives the
// configured load against it, and returns the per-target results in
// sweep order. Both web experiments share this scaffolding; they differ
// only in client configuration and which metrics they print.
func runWebSweep(targets []webTarget, files *loadgen.FileSet, clients []int,
	cfgFor func(addr string, clients int) loadgen.WebClientConfig) (map[string][]loadgen.WebResult, error) {

	results := make(map[string][]loadgen.WebResult)
	for _, tgt := range targets {
		for _, c := range clients {
			addr, stop, err := tgt.start(files)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", tgt.name, err)
			}
			res := loadgen.RunWebLoad(context.Background(), cfgFor(addr, c))
			stop()
			results[tgt.name] = append(results[tgt.name], res)
		}
	}
	return results, nil
}

// printClientsHeader prints the sweep's column header.
func printClientsHeader(clients []int) {
	fmt.Printf("%-16s", "clients")
	for _, c := range clients {
		fmt.Printf("%14d", c)
	}
	fmt.Println()
}

// printResultTable prints one metric row per target across the sweep.
func printResultTable(title string, targets []webTarget,
	results map[string][]loadgen.WebResult, cell func(loadgen.WebResult) string) {

	fmt.Println(title)
	for _, tgt := range targets {
		fmt.Printf("%-16s", tgt.name)
		for _, res := range results[tgt.name] {
			fmt.Printf("%14s", cell(res))
		}
		fmt.Println()
	}
}

func fmtTput(res loadgen.WebResult) string { return fmt.Sprintf("%.0f", res.Throughput) }

func fmtLat(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

// expFigure3 regenerates Figure 3: throughput and mean latency versus
// simultaneous clients for the three Flux web servers, the knot-like
// threaded baseline, and the haboob-like staged baseline.
//
// The paper's shape: flux-threadpool ~ flux-event ~ knot at the top,
// haboob notably below, flux thread-per-client worst as clients grow;
// the event server shows a latency hiccup at low client counts.
func expFigure3(cfg benchConfig) error {
	clients := []int{1, 4, 16, 64, 128}
	duration := 4 * time.Second
	warmup := time.Second
	if cfg.quick {
		clients = []int{1, 8, 32}
		duration = 1500 * time.Millisecond
		warmup = 300 * time.Millisecond
	}

	files := loadgen.NewFileSet(2)
	targets := webTargets(cfg, files)

	fmt.Printf("SPECweb99-like static load, 5 requests per keep-alive connection, corpus %d MB\n\n",
		files.TotalBytes()>>20)
	printClientsHeader(clients)

	results, err := runWebSweep(targets, files, clients, func(addr string, c int) loadgen.WebClientConfig {
		return loadgen.WebClientConfig{
			Addr:     addr,
			Clients:  c,
			Files:    files,
			Duration: duration,
			Warmup:   warmup,
			Seed:     101,
		}
	})
	if err != nil {
		return err
	}

	printResultTable("throughput (requests/sec):", targets, results, fmtTput)
	printResultTable("\nmean latency:", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.Mean) })
	fmt.Println("\npaper (Figure 3): knot ~ flux-threadpool ~ flux-event > haboob; flux-thread worst.")
	fmt.Println("the paper's low-client event-server latency hiccup (admission waiting out a source")
	fmt.Println("poll timeout) no longer reproduces: the connection plane injects connections")
	fmt.Println("directly, so admission never rides the poll clock")
	fmt.Println()
	return writePathComparison(cfg)
}

// writePathComparison measures the static write paths head to head on
// the flux-threadpool server under the Figure 3 static load: the legacy
// copy path (response assembled contiguously, one write), the vectored
// zero-copy path (immutable header blob + cached body in one
// writev(2)), and the vectored path with large bodies streamed via
// sendfile(2) from a materialized corpus.
func writePathComparison(cfg benchConfig) error {
	clients := []int{16, 64}
	duration := 3 * time.Second
	warmup := 500 * time.Millisecond
	if cfg.quick {
		clients = []int{8}
		duration = 800 * time.Millisecond
		warmup = 150 * time.Millisecond
	}

	variants := []struct {
		name        string
		copyWrites  bool
		materialize bool
	}{
		{"copy", true, false},
		{"writev", false, false},
		{"writev+sendfile", false, true},
	}
	var targets []webTarget
	for _, v := range variants {
		v := v
		targets = append(targets, webTarget{v.name, func(*loadgen.FileSet) (string, func(), error) {
			// Each variant serves its own corpus instance so the sendfile
			// arm's materialization cannot leak into the others; contents
			// are deterministic, so clients agree regardless.
			files := loadgen.NewFileSet(2)
			var cleanup func()
			if v.materialize {
				dir, err := os.MkdirTemp("", "fluxbench-corpus-")
				if err != nil {
					return "", nil, err
				}
				cleanup = func() { os.RemoveAll(dir) }
				if err := files.Materialize(dir); err != nil {
					cleanup()
					return "", nil, err
				}
			}
			srv, err := webserver.New(webserver.Config{
				Files:         files,
				Engine:        flux.ThreadPool,
				PoolSize:      64,
				SourceTimeout: 20 * time.Millisecond,
				CopyWrites:    v.copyWrites,
			})
			if err != nil {
				if cleanup != nil {
					cleanup()
				}
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				if cleanup != nil {
					cleanup()
				}
				return "", nil, err
			}
			return srv.Addr(), func() {
				stop()
				if cleanup != nil {
					cleanup()
				}
			}, nil
		}})
	}

	clientFiles := loadgen.NewFileSet(2)
	fmt.Println("static write paths, flux-threadpool, same SPECweb99-like static load:")
	printClientsHeader(clients)
	results, err := runWebSweep(targets, clientFiles, clients, func(addr string, c int) loadgen.WebClientConfig {
		return loadgen.WebClientConfig{
			Addr:     addr,
			Clients:  c,
			Files:    clientFiles,
			Duration: duration,
			Warmup:   warmup,
			Seed:     101,
		}
	})
	if err != nil {
		return err
	}
	printResultTable("throughput (requests/sec):", targets, results, fmtTput)
	printResultTable("\nmean latency:", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.Mean) })
	fmt.Println("\ncopy renders each response contiguously in user space; writev sends the interned")
	fmt.Println("header and the cached body in one vectored syscall (0 allocs/response); the")
	fmt.Println("sendfile arm additionally streams bodies >= 64 KB from the materialized corpus")
	fmt.Println("without the bytes ever entering user space")
	return nil
}

// expWebMixed runs the SPECweb99-like mixed macro workload under the
// paper's own traffic shape (§4.2): keep-alive clients holding
// persistent connections and issuing back-to-back requests from the
// full mix — static GETs split 35/50/14/1 over the four file classes,
// ad-rotation dynamic GETs, and form POSTs (~30% dynamic overall) — for
// all four Flux engines and both hand-written baselines.
func expWebMixed(cfg benchConfig) error {
	clients := []int{4, 16, 64, 128}
	duration := 4 * time.Second
	warmup := time.Second
	if cfg.quick {
		clients = []int{4, 16}
		duration = 1200 * time.Millisecond
		warmup = 200 * time.Millisecond
	}

	// The dynamic share must ride the compiled FScript path: a stale or
	// missing pages_compiled.go would silently re-pay the interpreter
	// tax and invalidate the numbers, so fail loudly instead.
	probe, err := fscript.NewBenchPages()
	if err != nil {
		return err
	}
	if !probe.CompiledActive() {
		return fmt.Errorf("compiled dynamic-page path inactive (stale pages_compiled.go? " +
			"run `go generate ./internal/servers/webserver/fscript`)")
	}

	files := loadgen.NewFileSet(2)
	targets := webTargets(cfg, files)
	// One arm forces the bare interpreter on the same engine, so every
	// mixed sweep carries its own before/after of the interpreter tax.
	targets = append(targets, webTarget{"flux-tp-interp", func(files *loadgen.FileSet) (string, func(), error) {
		srv, err := webserver.New(webserver.Config{
			Files:         files,
			Engine:        flux.ThreadPool,
			PoolSize:      64,
			SourceTimeout: 20 * time.Millisecond,
			Dispatch:      fscript.DispatchInterpretRaw,
		})
		if err != nil {
			return "", nil, err
		}
		stop, err := startTarget(srv)
		if err != nil {
			return "", nil, err
		}
		return srv.Addr(), stop, nil
	}})

	fmt.Printf("dynamic dispatch: %s (flux-tp-interp forces the bare interpreter for comparison)\n",
		fscript.DispatchCompiled)
	fmt.Printf("SPECweb99-like mixed load: keep-alive connections, %.0f%% dynamic "+
		"(of which %.0f%% POSTs), corpus %d MB\n\n",
		100*loadgen.DefaultDynamicFraction, 100*loadgen.DefaultPostFraction,
		files.TotalBytes()>>20)
	printClientsHeader(clients)

	results, err := runWebSweep(targets, files, clients, func(addr string, c int) loadgen.WebClientConfig {
		return loadgen.WebClientConfig{
			Addr:            addr,
			Clients:         c,
			Files:           files,
			KeepAlive:       true,
			Duration:        duration,
			Warmup:          warmup,
			DynamicFraction: loadgen.DefaultDynamicFraction,
			PostFraction:    loadgen.DefaultPostFraction,
			Seed:            211,
		}
	})
	if err != nil {
		return err
	}

	printResultTable("throughput (requests/sec):", targets, results, fmtTput)
	printResultTable("\np50 latency:", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.P50) })
	printResultTable("\np95 latency:", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.P95) })
	fmt.Printf("\nper-class latency at %d clients:\n", clients[len(clients)-1])
	for _, tgt := range targets {
		rows := results[tgt.name]
		fmt.Printf("%-16s %s\n", tgt.name, rows[len(rows)-1].ClassBreakdown())
	}
	fmt.Println("\npaper (§4.2): persistent connections + the mixed class/dynamic workload are the")
	fmt.Println("conditions of Figure 3. The dynamic share used to be interpreter-bound and set")
	fmt.Println("the throughput ceiling; with templates compiled to native Go (fluxc -fscript)")
	fmt.Println("the ceiling lifts — flux-tp-interp re-runs the same engine on the bare")
	fmt.Println("interpreter to show the tax. On the Flux event/steal engines the per-class")
	fmt.Println("table shows dynamic latency above static (MarkBlocking offloads script work),")
	fmt.Println("while the baselines run scripts inline and show uniform per-class latency")
	return nil
}

// lifecycleServer is the Start/Shutdown surface every target — Flux or
// baseline — now exposes; the harness drives them uniformly.
type lifecycleServer interface {
	Start(ctx context.Context) error
	Shutdown(ctx context.Context) error
}

// startTarget starts a server and returns the stop hook: a graceful
// shutdown bounded by a drain deadline.
func startTarget(srv lifecycleServer) (func(), error) {
	if err := srv.Start(context.Background()); err != nil {
		return nil, err
	}
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}, nil
}

func webTargets(cfg benchConfig, files *loadgen.FileSet) []webTarget {
	fluxStart := func(kind flux.EngineKind) func(*loadgen.FileSet) (string, func(), error) {
		return func(files *loadgen.FileSet) (string, func(), error) {
			c := webserver.Config{
				Files:         files,
				Engine:        kind,
				PoolSize:      64,
				SourceTimeout: 20 * time.Millisecond,
				Telemetry:     cfg.tel,
			}
			if cfg.prof != nil {
				c.Profiler = cfg.prof
			}
			srv, err := webserver.New(c)
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}
	}
	return []webTarget{
		{"flux-thread", fluxStart(flux.ThreadPerFlow)},
		{"flux-threadpool", fluxStart(flux.ThreadPool)},
		{"flux-event", fluxStart(flux.EventDriven)},
		{"flux-steal", fluxStart(flux.WorkStealing)},
		{"knot-like", func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := knotweb.New(knotweb.Config{Files: files})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
		{"haboob-like", func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := sedaweb.New(sedaweb.Config{Files: files, WorkersPerStage: 4, QueueDepth: 64})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
	}
}
