// Command fluxbench regenerates every table and figure of the paper's
// evaluation (§4–§5) against this reproduction:
//
//	table1    servers and lines of code (Table 1)
//	fig3      web server throughput + latency vs clients (Figure 3)
//	web       SPECweb99-like mixed macro workload: keep-alive clients,
//	          static class mix + dynamic GET/POST (§4.2's conditions)
//	overload  offered load past saturation: throughput, p95, and shed
//	          counts with and without bounded admission (netkit plane)
//	fig4      BitTorrent latency, completions/s, network throughput (Figure 4)
//	game      game server heartbeat health vs players (§4.4)
//	fig5      compiler-generated simulator code for a node (Figure 5)
//	fig6      predicted vs actual image-server throughput, 1..4 CPUs (Figure 6)
//	profile   BitTorrent path profile: hot paths (§5.2)
//	deadlock  the §3.1.1 constraint-hoisting example
//	all       everything above
//
// Usage:
//
//	fluxbench -exp fig3 [-quick] [-obs addr]
//
// -quick shrinks client counts and durations for a fast smoke run; the
// default sizes produce the shapes reported in EXPERIMENTS.md.
//
// -obs opens the live ops endpoint (internal/telemetry) on addr and
// attaches one shared telemetry plane plus a path profiler to every
// Flux server the experiments start: /metrics, /debug/pprof/*, and the
// /debug/flux/* JSON views (fluxtop's feed) all serve mid-run.
// -obs-hold keeps the endpoint up that long after the experiments
// finish, so a scrape race never cuts an inspection short.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	flux "github.com/flux-lang/flux"
)

type benchConfig struct {
	quick bool
	// tel and prof are non-nil only under -obs: the shared telemetry
	// plane and path profiler every Flux target in the experiments
	// attaches, feeding the ops endpoint.
	tel  *flux.Telemetry
	prof *flux.Profiler
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig3, web, overload, fig4, bt, game, fig5, fig6, profile, deadlock, all")
	quick := flag.Bool("quick", false, "shrink durations and client counts for a smoke run")
	obs := flag.String("obs", "", "serve the live ops endpoint (/metrics, /debug/pprof, /debug/flux) on this address")
	obsHold := flag.Duration("obs-hold", 0, "keep the ops endpoint serving this long after the experiments finish")
	flag.Parse()

	cfg := benchConfig{quick: *quick}
	var ops *flux.Ops
	if *obs != "" {
		cfg.tel = flux.NewTelemetry()
		cfg.prof = flux.NewProfiler()
		var err error
		ops, err = flux.ServeOps(*obs, cfg.tel, flux.WithOpsProfiler(cfg.prof))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: ops endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ops endpoint: http://%s/metrics  /debug/pprof/  /debug/flux/summary\n", ops.Addr())
	}

	experiments := map[string]func(benchConfig) error{
		"table1":   expTable1,
		"fig3":     expFigure3,
		"web":      expWebMixed,
		"overload": expOverload,
		"fig4":     expFigure4,
		"bt":       expSwarm,
		"game":     expGame,
		"fig5":     expFigure5,
		"fig6":     expFigure6,
		"profile":  expProfile,
		"deadlock": expDeadlock,
	}
	order := []string{"table1", "deadlock", "fig5", "fig3", "web", "overload", "fig4", "game", "fig6", "profile"}

	run := func(name string) {
		fmt.Printf("\n================ %s ================\n", name)
		if err := experiments[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
	} else {
		if _, ok := experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "fluxbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		run(*exp)
	}

	if ops != nil && *obsHold > 0 {
		fmt.Printf("\nholding ops endpoint at http://%s for %v\n", ops.Addr(), *obsHold)
		time.Sleep(*obsHold)
	}
	if ops != nil {
		_ = ops.Close()
	}
}
