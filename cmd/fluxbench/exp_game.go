package main

import (
	"context"
	"fmt"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/gameserver"
)

// expGame regenerates the §4.4 result: the Tag server's 10 Hz heartbeat
// holds as the player count grows, with no appreciable difference
// between runtime engines — the per-turn state computation is identical
// and far below the heartbeat budget.
func expGame(cfg benchConfig) error {
	players := []int{8, 32, 64, 128}
	duration := 3 * time.Second
	if cfg.quick {
		players = []int{8, 32}
		duration = 1500 * time.Millisecond
	}

	engines := []struct {
		name string
		kind flux.EngineKind
	}{
		{"flux-thread", flux.ThreadPerFlow},
		{"flux-threadpool", flux.ThreadPool},
		{"flux-event", flux.EventDriven},
		{"flux-steal", flux.WorkStealing},
	}

	fmt.Println("10 Hz heartbeat; clients move at 10 Hz; measured: state inter-arrival p95 and")
	fmt.Println("server state-computation time per turn")
	for _, eng := range engines {
		fmt.Printf("\n%s:\n", eng.name)
		fmt.Printf("  %-10s %-18s %-18s %-14s\n", "players", "interarrival p95", "mean turn compute", "states seen")
		for _, n := range players {
			srv, err := gameserver.New(gameserver.Config{
				Heartbeat: 100 * time.Millisecond,
				Engine:    eng.kind,
				PoolSize:  16,
				Telemetry: cfg.tel,
				// 1ms keeps the event dispatcher's uninterruptible UDP
				// polls an order of magnitude below the heartbeat, so
				// turn timing is not quantized by source blocks.
				SourceTimeout: time.Millisecond,
			})
			if err != nil {
				return err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return err
			}

			res := loadgen.RunGameLoad(context.Background(), loadgen.GameClientConfig{
				Addr:     srv.Addr(),
				Players:  n,
				MoveHz:   10,
				Duration: duration,
				Warmup:   duration / 5,
				Seed:     int64(n),
			})
			_, meanTurn := srv.TickStats()
			stop()
			fmt.Printf("  %-10d %-18v %-18v %-14d\n",
				n, res.InterArrival.P95.Round(time.Millisecond), meanTurn, res.StatesReceived)
		}
	}
	fmt.Println("\npaper (§4.4): no appreciable difference between the traditional implementation")
	fmt.Println("and the Flux versions; the 10 Hz turn rate dominates latency")
	return nil
}
