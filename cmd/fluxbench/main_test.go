package main

import "testing"

func TestFluxLoc(t *testing.T) {
	src := `
// comment
A () => (int v);

B (int v) => ();
source A => F;
F = B;
`
	if got := fluxLoc(src); got != 4 {
		t.Errorf("fluxLoc = %d, want 4", got)
	}
	if got := fluxLoc(""); got != 0 {
		t.Errorf("empty fluxLoc = %d", got)
	}
}

func TestDirLocMissingDirectory(t *testing.T) {
	n, note := dirLoc("no/such/dir")
	if n != 0 || note == "" {
		t.Errorf("dirLoc on missing dir = %d, %q", n, note)
	}
}

func TestExperimentTableComplete(t *testing.T) {
	// Every experiment named in main's order list must have a function;
	// this guards the dispatch map against drift.
	experiments := map[string]func(benchConfig) error{
		"table1":   expTable1,
		"fig3":     expFigure3,
		"web":      expWebMixed,
		"fig4":     expFigure4,
		"game":     expGame,
		"fig5":     expFigure5,
		"fig6":     expFigure6,
		"profile":  expProfile,
		"deadlock": expDeadlock,
	}
	for name, fn := range experiments {
		if fn == nil {
			t.Errorf("experiment %q has nil function", name)
		}
	}
}
