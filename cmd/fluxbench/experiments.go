package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/servers/bittorrent"
	"github.com/flux-lang/flux/internal/servers/gameserver"
	"github.com/flux-lang/flux/internal/servers/imageserver"
	"github.com/flux-lang/flux/internal/servers/webserver"
)

// expTable1 regenerates Table 1: the servers, their styles, and their
// lines of Flux and Go node-logic code. The paper reports 23–84 lines of
// Flux and 257–878 lines of C; the comparison here is like-for-like on
// this reproduction's sources.
func expTable1(benchConfig) error {
	rows := []struct {
		name  string
		style string
		desc  string
		fsrc  string
		dir   string
	}{
		{"Web server", "request-response", "HTTP/1.1 + FScript dynamic pages",
			webserver.FluxSource, "internal/servers/webserver"},
		{"Image server", "request-response", "image compression server (Figure 2)",
			imageserver.FluxSource, "internal/servers/imageserver"},
		{"BitTorrent", "peer-to-peer", "file-sharing peer (Figure 7)",
			bittorrent.FluxSource, "internal/servers/bittorrent"},
		{"Game server", "heartbeat client-server", "multiplayer Tag over UDP",
			gameserver.FluxSource, "internal/servers/gameserver"},
	}
	fmt.Printf("%-14s %-24s %-42s %10s %10s\n", "Server", "Style", "Description", "Flux LoC", "Go LoC")
	for _, r := range rows {
		goLoc, note := dirLoc(r.dir)
		fmt.Printf("%-14s %-24s %-42s %10d %9d%s\n",
			r.name, r.style, r.desc, fluxLoc(r.fsrc), goLoc, note)
	}
	fmt.Println("\npaper (Table 1): web 36/386(+PHP), image 23/551(+libjpeg), BitTorrent 84/878, game 54/257")
	return nil
}

// fluxLoc counts non-blank, non-comment lines of a Flux program.
func fluxLoc(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// dirLoc counts non-blank, non-comment lines of the non-test Go files in
// a directory (best-effort: requires running from the repository root).
func dirLoc(dir string) (int, string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "  (run from the repo root to count Go lines)"
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			t := strings.TrimSpace(line)
			if t == "" || strings.HasPrefix(t, "//") {
				continue
			}
			total++
		}
	}
	return total, ""
}

// expDeadlock reproduces the §3.1.1 example: the compiler must hoist x
// into C and warn.
func expDeadlock(benchConfig) error {
	const src = `
SrcA () => (int v);
SrcC () => (int v);
B (int v) => ();
D (int v) => ();
source SrcA => A;
source SrcC => C;
A = B;
C = D;
atomic A:{x};
atomic B:{y};
atomic C:{y};
atomic D:{x};
`
	fmt.Println("program fragment (§3.1.1):")
	fmt.Println("  A = B;  C = D;")
	fmt.Println("  atomic A:{x}; atomic B:{y}; atomic C:{y}; atomic D:{x};")
	prog, err := flux.Compile("deadlock.flux", src)
	if err != nil {
		return err
	}
	fmt.Println("\ncompiler warnings:")
	for _, w := range prog.Warnings {
		fmt.Println(" ", w)
	}
	fmt.Println("\nfinal constraint sets:")
	for _, name := range []string{"A", "B", "C", "D"} {
		n := prog.Node(name)
		var cs []string
		for _, c := range n.Effective {
			cs = append(cs, c.String())
		}
		fmt.Printf("  atomic %s:{%s};\n", name, strings.Join(cs, ","))
	}
	fmt.Println("\npaper: C ends with {x,y} — x acquired early to preserve canonical order")
	return nil
}

// expFigure5 prints the generated discrete-event-simulator source for
// the image server, as Figure 5 shows for the Image node.
func expFigure5(benchConfig) error {
	prog, err := flux.Compile("imageserver.flux", imageserver.FluxSource)
	if err != nil {
		return err
	}
	out := flux.GenerateSimulatorSource(prog)
	// Show the cache-constrained nodes, the figure's point.
	fmt.Println(out)
	return nil
}
