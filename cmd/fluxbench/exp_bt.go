package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/ctorrent"
	"github.com/flux-lang/flux/internal/servers/bittorrent"
	"github.com/flux-lang/flux/internal/torrent"
)

// benchTorrent builds the shared test file. The paper uses 54 MB; the
// default here is 8 MB (quick: 2 MB) so sweeps finish in CI time — the
// figure's shape (network saturation, who wins pre-saturation) is
// unchanged.
func benchTorrent(cfg benchConfig) (*torrent.MetaInfo, []byte, error) {
	size := 8 << 20
	if cfg.quick {
		size = 2 << 20
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(13)).Read(data)
	meta, err := torrent.New("bench.bin", "", data, 256*1024)
	return meta, data, err
}

type btTarget struct {
	name  string
	start func(meta *torrent.MetaInfo, data []byte) (addr string, stop func(), err error)
}

// expFigure4 regenerates Figure 4: per-download latency, completions per
// second, and network throughput versus simultaneous clients, for the
// three Flux peers and the ctorrent-like baseline.
func expFigure4(cfg benchConfig) error {
	meta, data, err := benchTorrent(cfg)
	if err != nil {
		return err
	}
	clients := []int{1, 4, 8, 16}
	duration := 5 * time.Second
	warmup := time.Second
	if cfg.quick {
		clients = []int{1, 4}
		duration = 2 * time.Second
		warmup = 400 * time.Millisecond
	}

	targets := btTargets(cfg)
	fmt.Printf("shared file: %d MB, %d pieces; clients re-download continuously\n\n",
		meta.Length>>20, meta.NumPieces())
	fmt.Printf("%-16s", "clients")
	for _, c := range clients {
		fmt.Printf("%16d", c)
	}
	fmt.Println()

	type row struct {
		comp []float64
		mbps []float64
		lat  []time.Duration
	}
	results := make(map[string]*row)
	for _, tgt := range targets {
		r := &row{}
		for _, c := range clients {
			addr, stop, err := tgt.start(meta, data)
			if err != nil {
				return fmt.Errorf("%s: %w", tgt.name, err)
			}
			res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
				Addr: addr, Meta: meta,
				Clients:  c,
				Duration: duration,
				Warmup:   warmup,
				Seed:     7,
			})
			stop()
			r.comp = append(r.comp, res.CompPerSec)
			r.mbps = append(r.mbps, res.Mbps)
			r.lat = append(r.lat, res.PieceLatency.Mean)
		}
		results[tgt.name] = r
	}

	fmt.Println("completions per second:")
	for _, tgt := range targets {
		fmt.Printf("%-16s", tgt.name)
		for _, v := range results[tgt.name].comp {
			fmt.Printf("%16.2f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nnetwork throughput (Mb/s):")
	for _, tgt := range targets {
		fmt.Printf("%-16s", tgt.name)
		for _, v := range results[tgt.name].mbps {
			fmt.Printf("%16.0f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nmean piece latency:")
	for _, tgt := range targets {
		fmt.Printf("%-16s", tgt.name)
		for _, v := range results[tgt.name].lat {
			fmt.Printf("%16s", v.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\npaper (Figure 4): all implementations saturate the network;")
	fmt.Println("Flux slightly below CTorrent before saturation")
	return nil
}

func btTargets(cfg benchConfig) []btTarget {
	fluxStart := func(kind flux.EngineKind) func(*torrent.MetaInfo, []byte) (string, func(), error) {
		return func(meta *torrent.MetaInfo, data []byte) (string, func(), error) {
			srv, err := bittorrent.New(bittorrent.Config{
				Meta: meta, Content: data,
				Engine:        kind,
				PoolSize:      64,
				SourceTimeout: 5 * time.Millisecond,
				Telemetry:     cfg.tel,
			})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}
	}
	return []btTarget{
		{"flux-thread", fluxStart(flux.ThreadPerFlow)},
		{"flux-threadpool", fluxStart(flux.ThreadPool)},
		{"flux-event", fluxStart(flux.EventDriven)},
		{"ctorrent-like", func(meta *torrent.MetaInfo, data []byte) (string, func(), error) {
			srv, err := ctorrent.New(ctorrent.Config{Meta: meta, Content: data})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
	}
}

// expSwarm sweeps a real swarm against the Flux seeder: every load peer
// speaks the full wire protocol (handshake, bitfield, tit-for-tat
// choking, rarest-first, pipelining with endgame cancels, keep-alives)
// and loops — completed downloads reset into fresh arrivals — so
// leechers exchange verified pieces among themselves while the seeder
// runs netkit admission with a connection cap. Reported per sweep
// point: completions/s, download throughput, piece-latency quantiles,
// counted sheds, and the seeder's per-message-type receive counters.
func expSwarm(cfg benchConfig) error {
	size := 1 << 20 // 16 pieces of 64 KB
	if cfg.quick {
		size = 256 << 10
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(17)).Read(data)
	meta, err := torrent.New("swarm.bin", "", data, 64*1024)
	if err != nil {
		return err
	}

	peersSweep := []int{32, 64, 128, 256}
	duration := 8 * time.Second
	warmup := 2 * time.Second
	maxConns := 160 // < the largest sweep point: the cap sheds, peers reroute
	if cfg.quick {
		peersSweep = []int{8, 16}
		duration = 3 * time.Second
		warmup = 500 * time.Millisecond
		maxConns = 0
	}

	fmt.Printf("swarm file: %d KB, %d pieces; looping leechers, seed + 4 random neighbors each\n",
		meta.Length>>10, meta.NumPieces())
	fmt.Printf("seeder: steal engine, tit-for-tat MaxUnchoked=32, MaxConns=%d\n\n", maxConns)

	type point struct {
		res  loadgen.SwarmResult
		shed uint64
		msgs map[string]uint64
	}
	points := make([]point, 0, len(peersSweep))
	for _, n := range peersSweep {
		srv, err := bittorrent.New(bittorrent.Config{
			Meta: meta, Content: data,
			Engine:           flux.WorkStealing,
			PoolSize:         64,
			SourceTimeout:    5 * time.Millisecond,
			MaxUnchoked:      32,
			ChokeInterval:    250 * time.Millisecond,
			HandshakeTimeout: 5 * time.Second,
			IdleTimeout:      60 * time.Second,
			MaxConns:         maxConns,
			Telemetry:        cfg.tel,
		})
		if err != nil {
			return err
		}
		stop, err := startTarget(srv)
		if err != nil {
			return err
		}
		res, err := loadgen.RunSwarm(context.Background(), loadgen.SwarmConfig{
			SeedAddr:       srv.Addr(),
			Meta:           meta,
			Peers:          n,
			Neighbors:      4,
			Duration:       duration,
			Warmup:         warmup,
			Seed:           29,
			ChokeInterval:  250 * time.Millisecond,
			MaxUnchoked:    4,
			RequestTimeout: 5 * time.Second,
		})
		shed := srv.PlaneStats().Shed
		msgs := srv.MsgCounts()
		stop()
		if err != nil {
			return err
		}
		points = append(points, point{res, shed, msgs})
	}

	fmt.Printf("%-18s", "peers")
	for _, n := range peersSweep {
		fmt.Printf("%14d", n)
	}
	fmt.Println()
	row := func(label string, f func(point) string) {
		fmt.Printf("%-18s", label)
		for _, p := range points {
			fmt.Printf("%14s", f(p))
		}
		fmt.Println()
	}
	row("completions/s", func(p point) string { return fmt.Sprintf("%.2f", p.res.CompPerSec) })
	row("download Mb/s", func(p point) string { return fmt.Sprintf("%.0f", p.res.Mbps) })
	row("piece p50", func(p point) string { return p.res.PieceLatency.P50.Round(10 * time.Microsecond).String() })
	row("piece p95", func(p point) string { return p.res.PieceLatency.P95.Round(10 * time.Microsecond).String() })
	row("sheds", func(p point) string { return fmt.Sprintf("%d", p.shed) })
	row("swarm errors", func(p point) string { return fmt.Sprintf("%d", p.res.Errors) })

	fmt.Println("\nseeder messages received per type:")
	for _, kind := range []string{"interested", "request", "have", "bitfield", "keepalive", "piece", "closed"} {
		row("  "+kind, func(p point) string { return fmt.Sprintf("%d", p.msgs[kind]) })
	}
	fmt.Println("\npaper (§4.3): the Flux peer sustains swarm traffic; overload control")
	fmt.Println("sheds admissions past the connection cap instead of queueing unboundedly")
	return nil
}

// expProfile regenerates the §5.2 path-profiling result: the BitTorrent
// peer's most expensive path is the block transfer, while the most
// frequently executed path is the empty poll ending in ERROR.
func expProfile(cfg benchConfig) error {
	meta, data, err := benchTorrent(cfg)
	if err != nil {
		return err
	}
	prof := flux.NewProfiler()
	srv, err := bittorrent.New(bittorrent.Config{
		Meta: meta, Content: data,
		Engine:       flux.ThreadPool,
		PoolSize:     32,
		PollInterval: 500 * time.Microsecond,
		Profiler:     prof,
		Telemetry:    cfg.tel,
	})
	if err != nil {
		return err
	}
	stop, err := startTarget(srv)
	if err != nil {
		return err
	}

	duration := 5 * time.Second
	clients := 25
	if cfg.quick {
		duration = 2 * time.Second
		clients = 5
	}
	res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
		Addr: srv.Addr(), Meta: meta,
		Clients:  clients,
		Duration: duration,
		Warmup:   duration / 5,
		Seed:     25,
	})
	stop()

	fmt.Printf("load: %d clients, %v — %s\n\n", clients, duration, res)
	g := srv.Program().Graphs["Poll"]
	fmt.Println(prof.Report(g, flux.ByCount, 8))
	fmt.Println(prof.Report(g, flux.ByTotalTime, 8))
	fmt.Println("paper (§5.2): transfer path most expensive (0.295 ms); empty-poll ERROR path most")
	fmt.Println("frequent (780,510 executions vs 313,994 transfers, 13% of execution time)")
	return nil
}
