package main

import (
	"fmt"
	"sync"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/core"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/webserver"
)

// ctrlTrace records the SLO controller's trajectory — the ctrl/*
// counter streams the controller publishes on the queue-depth surface
// each control step — so the experiment can print what the watermark
// actually did under each offered rate.
type ctrlTrace struct {
	mu   sync.Mutex
	wm   []int
	p95  []int // microseconds; 0 while under MinSamples
	shed []int // sheds/sec
}

func (t *ctrlTrace) QueueDepth(_ runtime.EngineKind, queue string, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch queue {
	case runtime.CtrlWatermark:
		t.wm = append(t.wm, depth)
	case runtime.CtrlWindowP95:
		t.p95 = append(t.p95, depth)
	case runtime.CtrlShedRate:
		t.shed = append(t.shed, depth)
	}
}

func (t *ctrlTrace) FlowDone(*core.FlatGraph, uint64, runtime.FlowOutcome, time.Duration) {}
func (t *ctrlTrace) NodeDone(*core.FlatGraph, *core.FlatNode, time.Duration)             {}

// summary compresses one run's trajectory into a line: how many steps
// ran, where the watermark travelled, and the last acted-on window p95.
func (t *ctrlTrace) summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.wm) == 0 {
		return "no control steps"
	}
	lo, hi := t.wm[0], t.wm[0]
	for _, w := range t.wm {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	var lastP95 time.Duration
	for i := len(t.p95) - 1; i >= 0; i-- {
		if t.p95[i] > 0 {
			lastP95 = time.Duration(t.p95[i]) * time.Microsecond
			break
		}
	}
	var maxShed int
	for _, s := range t.shed {
		if s > maxShed {
			maxShed = s
		}
	}
	return fmt.Sprintf("steps=%d  watermark min=%d max=%d final=%d  last-p95=%v  peak-sheds/s=%d",
		len(t.wm), lo, hi, t.wm[len(t.wm)-1], lastP95.Round(100*time.Microsecond), maxShed)
}

// printRatesHeader prints the open-loop sweep's column header.
func printRatesHeader(rates []int) {
	fmt.Printf("%-16s", "offered req/s")
	for _, r := range rates {
		fmt.Printf("%14d", r)
	}
	fmt.Println()
}

// expOverload sweeps OPEN-LOOP offered load — a Poisson arrival process
// at a fixed requests/sec, arrivals independent of completions — across
// a 10× range spanning saturation, against three admission policies on
// the same event-engine web server:
//
//   - flux-static: the hand-picked queue-depth watermark (64) from the
//     PR 5 design, conn cap 2×.
//   - flux-adaptive: the SLO controller (target served p95 30ms) moving
//     the watermark and conn cap with AIMD each 100ms from the measured
//     completed-flow latency window.
//   - flux-event-unbd: no admission control — the control that shows
//     what open-loop overload does to an unbounded queue.
//
// Closed-loop sweeps (the old form of this experiment) cannot show the
// meltdown: every client waits for its response, so offered load sags
// to the service rate exactly when the server slows. The open-loop
// generator keeps offering, and the tables split what was offered from
// what was accepted (served + 503) and what was actually served
// (goodput) — plus arrivals the generator itself refused at its
// in-flight cap (client sheds), so no load disappears silently.
func expOverload(cfg benchConfig) error {
	const watermark = 64
	const targetP95 = 30 * time.Millisecond

	rates := []int{750, 1500, 3000, 7500}
	duration := 3 * time.Second
	warmup := 800 * time.Millisecond
	if cfg.quick {
		rates = []int{500, 2000}
		duration = time.Second
		warmup = 200 * time.Millisecond
	}

	files := loadgen.NewFileSet(1)
	startFlux := func(c webserver.Config) (string, func(), error) {
		c.Files = files
		c.Engine = flux.EventDriven
		c.PoolSize = 64
		c.SourceTimeout = 20 * time.Millisecond
		// Slow-loris hardening rides along on the bounded targets: a
		// stalled request head or a dead keep-alive peer is reaped and
		// counted instead of pinning capacity for the whole run.
		if c.AdmitWatermark > 0 || c.TargetP95 > 0 {
			c.HeaderTimeout = 2 * time.Second
			c.IdleTimeout = 2 * time.Second
		}
		srv, err := webserver.New(c)
		if err != nil {
			return "", nil, err
		}
		stop, err := startTarget(srv)
		if err != nil {
			return "", nil, err
		}
		return srv.Addr(), stop, nil
	}

	var traces []*ctrlTrace // one per flux-adaptive run, in rate order
	targets := []webTarget{
		{"flux-static", func(*loadgen.FileSet) (string, func(), error) {
			return startFlux(webserver.Config{AdmitWatermark: watermark, MaxConns: 2 * watermark})
		}},
		{"flux-adaptive", func(*loadgen.FileSet) (string, func(), error) {
			tr := &ctrlTrace{}
			traces = append(traces, tr)
			return startFlux(webserver.Config{TargetP95: targetP95, Observer: tr})
		}},
		{"flux-event-unbd", func(*loadgen.FileSet) (string, func(), error) {
			return startFlux(webserver.Config{})
		}},
	}

	fmt.Printf("open-loop overload sweep: Poisson arrivals, single-request connections,\n"+
		"SPECweb99-like mix (%.0f%% dynamic); static watermark %d, adaptive SLO p95 %v\n\n",
		100*loadgen.DefaultDynamicFraction, watermark, targetP95)
	printRatesHeader(rates)

	results, err := runWebSweep(targets, files, rates, func(addr string, r int) loadgen.WebClientConfig {
		return loadgen.WebClientConfig{
			Addr:            addr,
			Files:           files,
			OfferedRate:     float64(r),
			Duration:        duration,
			Warmup:          warmup,
			DynamicFraction: loadgen.DefaultDynamicFraction,
			PostFraction:    loadgen.DefaultPostFraction,
			Seed:            307,
		}
	})
	if err != nil {
		return err
	}

	printResultTable("goodput (served requests/sec):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%.0f", res.Goodput) })
	printResultTable("\np95 latency (served requests):", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.P95) })
	printResultTable("\nserver sheds (503 overload answers):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.Sheds) })
	printResultTable("\nclient sheds (generator in-flight cap):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.ClientSheds) })
	printResultTable("\nerrors:", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.Errors) })

	fmt.Println("\nadaptive control trajectory (per offered rate):")
	for i, tr := range traces {
		if i < len(rates) {
			fmt.Printf("%8d/s  %s\n", rates[i], tr.summary())
		}
	}

	fmt.Println("\ngraceful degradation, open loop: past saturation the bounded targets convert")
	fmt.Println("excess arrivals into prompt 503s and hold served p95 roughly flat — the adaptive")
	fmt.Println("target finds its own admission point per rate instead of trusting a hand-picked")
	fmt.Println("watermark. flux-event-unbd queues every arrival: served p95 grows toward the")
	fmt.Println("run length while goodput stays pinned at the same ceiling, and the generator's")
	fmt.Println("in-flight cap (client sheds) is the only thing bounding the backlog")
	return nil
}
