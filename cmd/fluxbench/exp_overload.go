package main

import (
	"fmt"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/knotweb"
	"github.com/flux-lang/flux/internal/servers/baseline/sedaweb"
	"github.com/flux-lang/flux/internal/servers/webserver"
)

// expOverload sweeps offered load past saturation and records each
// server's graceful-degradation curve: throughput, p95 latency, and
// shed count versus client count. The bounded-admission Flux servers
// (event and steal engines behind the netkit connection plane, with a
// queue-depth watermark from the Observer plane) shed excess load with
// explicit 503s and Connection: close announcements, keeping served
// p95 bounded; the unbounded flux-event control queues everything and
// shows the latency blow-up admission control exists to prevent. The
// knot-like baseline bounds admission with a live-connection cap, the
// haboob-like baseline with its SEDA stage queues.
func expOverload(cfg benchConfig) error {
	// The admission bounds: past ~watermark queued events (Flux) or cap
	// connections (knot), new arrivals are shed.
	const watermark = 64
	const connCap = 64

	clients := []int{16, 64, 192, 384}
	duration := 3 * time.Second
	warmup := 800 * time.Millisecond
	if cfg.quick {
		clients = []int{16, 96}
		duration = time.Second
		warmup = 200 * time.Millisecond
	}

	files := loadgen.NewFileSet(1)
	fluxOverload := func(kind flux.EngineKind, wm int) func(*loadgen.FileSet) (string, func(), error) {
		return func(files *loadgen.FileSet) (string, func(), error) {
			maxConns := 0
			if wm > 0 {
				// The watermark reacts to sampled backlog; the conn cap
				// bounds the admission burst a between-samples window
				// can let through.
				maxConns = 2 * wm
			}
			srv, err := webserver.New(webserver.Config{
				Files:          files,
				Engine:         kind,
				PoolSize:       64,
				SourceTimeout:  20 * time.Millisecond,
				AdmitWatermark: wm,
				MaxConns:       maxConns,
			})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}
	}
	targets := []webTarget{
		{"flux-event", fluxOverload(flux.EventDriven, watermark)},
		{"flux-steal", fluxOverload(flux.WorkStealing, watermark)},
		{"flux-event-unbd", fluxOverload(flux.EventDriven, 0)}, // no admission control: the control
		{"knot-like", func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := knotweb.New(knotweb.Config{Files: files, MaxConns: connCap})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
		{"haboob-like", func(files *loadgen.FileSet) (string, func(), error) {
			srv, err := sedaweb.New(sedaweb.Config{Files: files, WorkersPerStage: 4, QueueDepth: connCap})
			if err != nil {
				return "", nil, err
			}
			stop, err := startTarget(srv)
			if err != nil {
				return "", nil, err
			}
			return srv.Addr(), stop, nil
		}},
	}

	fmt.Printf("overload sweep: keep-alive SPECweb99-like mix, %.0f%% dynamic; "+
		"admission watermark %d (flux), conn cap %d (knot), stage depth %d (haboob)\n\n",
		100*loadgen.DefaultDynamicFraction, watermark, connCap, connCap)
	printClientsHeader(clients)

	results, err := runWebSweep(targets, files, clients, func(addr string, c int) loadgen.WebClientConfig {
		return loadgen.WebClientConfig{
			Addr:            addr,
			Clients:         c,
			Files:           files,
			KeepAlive:       true,
			Duration:        duration,
			Warmup:          warmup,
			DynamicFraction: loadgen.DefaultDynamicFraction,
			PostFraction:    loadgen.DefaultPostFraction,
			Seed:            307,
		}
	})
	if err != nil {
		return err
	}

	printResultTable("throughput (requests/sec):", targets, results, fmtTput)
	printResultTable("\np95 latency (served requests):", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.P95) })
	printResultTable("\nsheds (503 overload answers):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.Sheds) })
	printResultTable("\nerrors:", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.Errors) })
	fmt.Println("\ngraceful degradation: past saturation the bounded servers hold throughput and")
	fmt.Println("served-request p95 roughly flat and convert excess offered load into sheds;")
	fmt.Println("flux-event-unbd (no watermark) queues everything instead — p95 grows with the")
	fmt.Println("client count while throughput stays pinned at the same ceiling")
	return nil
}
