package main

import (
	"fmt"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/runtime"
	"github.com/flux-lang/flux/internal/servers/webserver"
	"github.com/flux-lang/flux/internal/telemetry"
)

// ctrlSummary compresses one run's SLO-controller trajectory — the
// ctrl/* windows a telemetry plane aggregated off the observer surface —
// into a line: how many steps ran, where the watermark travelled, the
// last acted-on window p95, and the peak shed rate.
func ctrlSummary(tel *flux.Telemetry) string {
	var wm, p95, shed []telemetry.Sample
	for _, ss := range tel.CtrlStreams() {
		switch ss.Queue {
		case runtime.CtrlWatermark:
			wm = ss.Samples
		case runtime.CtrlWindowP95:
			p95 = ss.Samples
		case runtime.CtrlShedRate:
			shed = ss.Samples
		}
	}
	if len(wm) == 0 {
		return "no control steps"
	}
	lo, hi := wm[0].V, wm[0].V
	for _, s := range wm {
		if s.V < lo {
			lo = s.V
		}
		if s.V > hi {
			hi = s.V
		}
	}
	var lastP95 time.Duration
	for i := len(p95) - 1; i >= 0; i-- {
		if p95[i].V > 0 {
			lastP95 = time.Duration(p95[i].V) * time.Microsecond
			break
		}
	}
	var maxShed int64
	for _, s := range shed {
		if s.V > maxShed {
			maxShed = s.V
		}
	}
	return fmt.Sprintf("steps=%d  watermark min=%d max=%d final=%d  last-p95=%v  peak-sheds/s=%d",
		len(wm), lo, hi, wm[len(wm)-1].V, lastP95.Round(100*time.Microsecond), maxShed)
}

// printRatesHeader prints the open-loop sweep's column header.
func printRatesHeader(rates []int) {
	fmt.Printf("%-16s", "offered req/s")
	for _, r := range rates {
		fmt.Printf("%14d", r)
	}
	fmt.Println()
}

// expOverload sweeps OPEN-LOOP offered load — a Poisson arrival process
// at a fixed requests/sec, arrivals independent of completions — across
// a 10× range spanning saturation, against three admission policies on
// the same event-engine web server:
//
//   - flux-static: the hand-picked queue-depth watermark (64) from the
//     PR 5 design, conn cap 2×.
//   - flux-adaptive: the SLO controller (target served p95 30ms) moving
//     the watermark and conn cap with AIMD each 100ms from the measured
//     completed-flow latency window.
//   - flux-event-unbd: no admission control — the control that shows
//     what open-loop overload does to an unbounded queue.
//
// Closed-loop sweeps (the old form of this experiment) cannot show the
// meltdown: every client waits for its response, so offered load sags
// to the service rate exactly when the server slows. The open-loop
// generator keeps offering, and the tables split what was offered from
// what was accepted (served + 503) and what was actually served
// (goodput) — plus arrivals the generator itself refused at its
// in-flight cap (client sheds), so no load disappears silently.
func expOverload(cfg benchConfig) error {
	const watermark = 64
	const targetP95 = 30 * time.Millisecond

	rates := []int{750, 1500, 3000, 7500}
	duration := 3 * time.Second
	warmup := 800 * time.Millisecond
	if cfg.quick {
		rates = []int{500, 2000}
		duration = time.Second
		warmup = 200 * time.Millisecond
	}

	files := loadgen.NewFileSet(1)
	startFlux := func(c webserver.Config) (string, func(), error) {
		c.Files = files
		c.Engine = flux.EventDriven
		c.PoolSize = 64
		c.SourceTimeout = 20 * time.Millisecond
		// The shared -obs plane rides every target; per-run planes (the
		// adaptive trajectory below) join through the Observer slot.
		c.Telemetry = cfg.tel
		// Slow-loris hardening rides along on the bounded targets: a
		// stalled request head or a dead keep-alive peer is reaped and
		// counted instead of pinning capacity for the whole run.
		if c.AdmitWatermark > 0 || c.TargetP95 > 0 {
			c.HeaderTimeout = 2 * time.Second
			c.IdleTimeout = 2 * time.Second
		}
		srv, err := webserver.New(c)
		if err != nil {
			return "", nil, err
		}
		stop, err := startTarget(srv)
		if err != nil {
			return "", nil, err
		}
		return srv.Addr(), stop, nil
	}

	// One fresh telemetry plane per flux-adaptive run, in rate order: it
	// joins the observer chain, so the controller's Sink publishes each
	// control step's ctrl/* windows into it, and the trajectory printout
	// below is just a snapshot read — no ad-hoc stream scraping.
	var traces []*flux.Telemetry
	targets := []webTarget{
		{"flux-static", func(*loadgen.FileSet) (string, func(), error) {
			return startFlux(webserver.Config{AdmitWatermark: watermark, MaxConns: 2 * watermark})
		}},
		{"flux-adaptive", func(*loadgen.FileSet) (string, func(), error) {
			tr := flux.NewTelemetry()
			traces = append(traces, tr)
			return startFlux(webserver.Config{TargetP95: targetP95, Observer: tr})
		}},
		{"flux-event-unbd", func(*loadgen.FileSet) (string, func(), error) {
			return startFlux(webserver.Config{})
		}},
	}

	fmt.Printf("open-loop overload sweep: Poisson arrivals, single-request connections,\n"+
		"SPECweb99-like mix (%.0f%% dynamic); static watermark %d, adaptive SLO p95 %v\n\n",
		100*loadgen.DefaultDynamicFraction, watermark, targetP95)
	printRatesHeader(rates)

	results, err := runWebSweep(targets, files, rates, func(addr string, r int) loadgen.WebClientConfig {
		return loadgen.WebClientConfig{
			Addr:            addr,
			Files:           files,
			OfferedRate:     float64(r),
			Duration:        duration,
			Warmup:          warmup,
			DynamicFraction: loadgen.DefaultDynamicFraction,
			PostFraction:    loadgen.DefaultPostFraction,
			Seed:            307,
		}
	})
	if err != nil {
		return err
	}

	printResultTable("goodput (served requests/sec):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%.0f", res.Goodput) })
	printResultTable("\np95 latency (served requests):", targets, results,
		func(res loadgen.WebResult) string { return fmtLat(res.Latency.P95) })
	printResultTable("\nserver sheds (503 overload answers):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.Sheds) })
	printResultTable("\nclient sheds (generator in-flight cap):", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.ClientSheds) })
	printResultTable("\nerrors:", targets, results,
		func(res loadgen.WebResult) string { return fmt.Sprintf("%d", res.Errors) })

	fmt.Println("\nadaptive control trajectory (per offered rate):")
	for i, tr := range traces {
		if i < len(rates) {
			fmt.Printf("%8d/s  %s\n", rates[i], ctrlSummary(tr))
		}
	}

	fmt.Println("\ngraceful degradation, open loop: past saturation the bounded targets convert")
	fmt.Println("excess arrivals into prompt 503s and hold served p95 roughly flat — the adaptive")
	fmt.Println("target finds its own admission point per rate instead of trusting a hand-picked")
	fmt.Println("watermark. flux-event-unbd queues every arrival: served p95 grows toward the")
	fmt.Println("run length while goodput stays pinned at the same ceiling, and the generator's")
	fmt.Println("in-flight cap (client sheds) is the only thing bounding the backlog")
	return nil
}
