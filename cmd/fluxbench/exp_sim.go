package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/imageserver"
)

// expFigure6 regenerates Figure 6: parameterize the generated simulator
// from a single-processor profiling run of the image server, then
// compare its predictions with actual runs as more processors become
// available (GOMAXPROCS stands in for the paper's SunFire CPU board
// enabling). The response cache is disabled so every request compresses,
// keeping the server CPU-bound as in the paper's setup.
func expFigure6(cfg benchConfig) error {
	compressWork := 15 * time.Millisecond
	profileDuration := 3 * time.Second
	measureDuration := 3 * time.Second
	cpuCounts := []int{1, 2, 4}
	loadFactors := []float64{0.5, 1.0, 2.0}
	if cfg.quick {
		profileDuration = 1500 * time.Millisecond
		measureDuration = 1500 * time.Millisecond
		cpuCounts = []int{1, 2}
		loadFactors = []float64{0.5, 2.0}
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	// --- Step 1: profile on a single processor (the paper's
	// one-CPU parameterization run).
	runtime.GOMAXPROCS(1)
	prof := flux.NewProfiler()
	prog, baseRate, err := profileImageServer(cfg, prof, compressWork, profileDuration)
	if err != nil {
		return err
	}

	params := flux.ParamsFromProfile(prog, prof)
	serviceMean := params.NodeTime["Compress"]
	if serviceMean <= 0 {
		return fmt.Errorf("profiling run observed no Compress executions")
	}
	capacity1 := 1 / totalServiceMean(params)
	fmt.Printf("single-CPU profiling run (offered %0.f req/s): observed Compress mean %.2fms, capacity ~%.0f req/s/CPU\n\n",
		baseRate, 1000*serviceMean, capacity1)

	// --- Step 2: predicted vs actual for each CPU count and load.
	fmt.Printf("%-6s %-14s %-16s %-16s %-8s\n", "CPUs", "offered req/s", "predicted req/s", "measured req/s", "ratio")
	for _, cpus := range cpuCounts {
		for _, f := range loadFactors {
			offered := f * capacity1 * float64(cpus)

			params.CPUs = cpus
			params.Duration = 30
			params.Warmup = 3
			params.Seed = 1
			// Match the load generator's in-flight bound so overload
			// saturates instead of building an unbounded queue.
			params.MaxInFlight = 512
			params.Sources = map[string]flux.SimSourceParams{"Listen": {Rate: offered}}
			predicted := flux.Simulate(prog, params).Throughput

			runtime.GOMAXPROCS(cpus)
			measured, err := measureImageServer(cfg, compressWork, offered, measureDuration)
			if err != nil {
				return err
			}
			ratio := 0.0
			if predicted > 0 {
				ratio = measured / predicted
			}
			fmt.Printf("%-6d %-14.0f %-16.1f %-16.1f %-8.2f\n", cpus, offered, predicted, measured, ratio)
		}
	}
	fmt.Println("\npaper (Figure 6): predicted (dotted) and actual (solid) curves match closely;")
	fmt.Println("throughput saturates at each CPU count's capacity, doubling with the processors")
	return nil
}

// totalServiceMean sums the per-node CPU means along the dominant
// (cache-miss) path, the per-request CPU demand.
func totalServiceMean(p flux.SimParams) float64 {
	total := 0.0
	for _, node := range []string{"ReadRequest", "CheckCache", "ReadInFromDisk", "Compress", "StoreInCache", "Write", "Complete"} {
		total += p.NodeTime[node]
	}
	if total <= 0 {
		total = 0.004
	}
	return total
}

// profileImageServer runs the instrumented server under moderate load
// and returns its program and the offered rate used.
func profileImageServer(cfg benchConfig, prof *flux.Profiler, compressWork, duration time.Duration) (*flux.Program, float64, error) {
	srv, err := imageserver.New(imageserver.Config{
		Engine:       flux.ThreadPool,
		PoolSize:     8,
		CompressWork: compressWork,
		CacheBytes:   1, // disable caching: every request compresses
		Profiler:     prof,
		Telemetry:    cfg.tel,
	})
	if err != nil {
		return nil, 0, err
	}
	stop, err := startTarget(srv)
	if err != nil {
		return nil, 0, err
	}

	rate := 0.5 / compressWork.Seconds() / 4 // ~half capacity
	loadgen.RunImageLoad(context.Background(), loadgen.ImageClientConfig{
		Addr:     srv.Addr(),
		Rate:     rate,
		Duration: duration,
		Warmup:   duration / 5,
		Seed:     3,
	})
	stop()
	return srv.Program(), rate, nil
}

// measureImageServer runs an uninstrumented server at the offered rate
// and returns the measured throughput.
func measureImageServer(cfg benchConfig, compressWork time.Duration, offered float64, duration time.Duration) (float64, error) {
	srv, err := imageserver.New(imageserver.Config{
		Engine:       flux.ThreadPool,
		PoolSize:     64,
		CompressWork: compressWork,
		CacheBytes:   1,
		Telemetry:    cfg.tel,
	})
	if err != nil {
		return 0, err
	}
	stop, err := startTarget(srv)
	if err != nil {
		return 0, err
	}
	res := loadgen.RunImageLoad(context.Background(), loadgen.ImageClientConfig{
		Addr:        srv.Addr(),
		Rate:        offered,
		Duration:    duration,
		Warmup:      duration / 5,
		Seed:        4,
		MaxInFlight: 512,
	})
	stop()
	return res.Throughput, nil
}
