package main

import (
	"strings"
	"testing"
	"time"

	"github.com/flux-lang/flux/internal/telemetry"
)

func TestSpark(t *testing.T) {
	if got := spark(nil, 8); got != strings.Repeat(" ", 8) {
		t.Errorf("empty spark = %q", got)
	}
	ramp := []telemetry.Sample{{V: 0}, {V: 1}, {V: 2}, {V: 3}}
	got := spark(ramp, 8)
	if len([]rune(got)) != 8 {
		t.Errorf("spark width = %d runes, want 8", len([]rune(got)))
	}
	if !strings.HasPrefix(got, "▁") || !strings.Contains(got, "█") {
		t.Errorf("ramp spark = %q, want low start and full peak", got)
	}
	// Flat series renders at the floor, not a divide-by-zero.
	flat := spark([]telemetry.Sample{{V: 5}, {V: 5}}, 4)
	if !strings.HasPrefix(flat, "▁▁") {
		t.Errorf("flat spark = %q", flat)
	}
	// Wider-than-width windows keep only the most recent points.
	wide := make([]telemetry.Sample, 100)
	for i := range wide {
		wide[i] = telemetry.Sample{V: int64(i)}
	}
	if got := spark(wide, 10); len([]rune(got)) != 10 {
		t.Errorf("truncated spark = %q", got)
	}
}

// TestRenderFrame: one synthetic snapshot produces every section with
// the right rows; render stays pure so this needs no server.
func TestRenderFrame(t *testing.T) {
	now := time.Now()
	var flows telemetry.Histogram
	flows.Record(2 * time.Millisecond)
	flows.Record(8 * time.Millisecond)
	var nodeHist telemetry.Histogram
	nodeHist.Record(time.Millisecond)

	s := telemetry.Snapshot{
		At:            now.UnixNano(),
		UptimeSeconds: 90,
		Graphs: []telemetry.GraphSnapshot{{
			Graph:     "Listen",
			Instances: 2,
			Flows:     flows.Snapshot(),
			Outcomes:  map[string]uint64{"completed": 100, "errored": 2, "dropped": 1},
			Nodes: []telemetry.NodeSnapshot{
				{Node: "Compress", Hist: nodeHist.Snapshot()},
			},
		}},
		Streams: []telemetry.StreamSnapshot{{
			Engine: "threadpool", Queue: "admission", Last: 7,
			Samples: []telemetry.Sample{{V: 3}, {V: 7}},
		}},
		Sheds: []telemetry.ShedSnapshot{{
			Server: "webserver", Reason: "overload", Count: 42,
			Samples: []telemetry.Sample{{V: 40}, {V: 42}},
		}},
		Conns: []telemetry.ConnSnapshot{{
			Name:  "webserver",
			Stats: telemetry.ConnStats{Accepted: 500, Admitted: 460, Shed: 40, Live: 12},
		}},
		Traces: []telemetry.TraceSnapshot{
			{At: now.UnixNano(), Graph: "Listen", PathID: 3, Path: "Listen -> Compress -> Write",
				Outcome: "completed", Elapsed: int64(2 * time.Millisecond)},
			{At: now.UnixNano(), Graph: "Listen", PathID: 9,
				Outcome: "dropped", Elapsed: int64(time.Millisecond)},
		},
	}

	frame := render(s, "127.0.0.1:9190")
	for _, want := range []string{
		"fluxtop — 127.0.0.1:9190 — up 1m30s",
		"GRAPH", "Listen", "103", // flows summed across outcomes
		"HOT NODE", "Listen.Compress",
		"STREAM", "threadpool/admission",
		"SHEDS", "webserver/overload", "42",
		"PLANE", "500", "460", "12",
		"SAMPLED FLOWS", "Listen -> Compress -> Write",
		"path#9", // dropped trace falls back to the raw path register
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if !strings.Contains(frame, "err+drop") {
		t.Error("frame missing err+drop column")
	}
}
