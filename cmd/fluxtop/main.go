// Command fluxtop is a terminal view of a running Flux server's live
// telemetry: it polls the ops endpoint's /debug/flux/summary JSON
// (started with fluxbench -obs, or flux.ServeOps in any program) and
// redraws a top-style screen each interval — per-graph flow rates and
// latency quantiles, the hottest nodes, queue-depth and ctrl/*
// trajectories as sparklines, shed counters, and connection-plane
// admission state.
//
// Usage:
//
//	fluxtop -addr 127.0.0.1:9190 [-interval 1s] [-n 0]
//
// -n bounds the number of refreshes (0 polls until interrupted).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/flux-lang/flux/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", "ops endpoint address (host:port)")
	interval := flag.Duration("interval", time.Second, "refresh period")
	n := flag.Int("n", 0, "number of refreshes; 0 polls until interrupted")
	flag.Parse()

	url := "http://" + *addr + "/debug/flux/summary"
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fluxtop: %v\n", err)
			os.Exit(1)
		}
		// Clear and home, then one full frame: flicker-free enough at
		// top's cadence without pulling in a terminal library.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Print(render(snap, *addr))
	}
}

func fetch(client *http.Client, url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// sparkRunes grade a sparkline from empty to full block.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders the series' most recent points as a fixed-width
// sparkline scaled to the window's own min/max.
func spark(samples []telemetry.Sample, width int) string {
	if len(samples) > width {
		samples = samples[len(samples)-width:]
	}
	if len(samples) == 0 {
		return strings.Repeat(" ", width)
	}
	lo, hi := samples[0].V, samples[0].V
	for _, s := range samples {
		if s.V < lo {
			lo = s.V
		}
		if s.V > hi {
			hi = s.V
		}
	}
	var b strings.Builder
	for _, s := range samples {
		idx := 0
		if hi > lo {
			idx = int(int64(len(sparkRunes)-1) * (s.V - lo) / (hi - lo))
		}
		b.WriteRune(sparkRunes[idx])
	}
	b.WriteString(strings.Repeat(" ", width-len(samples)))
	return b.String()
}

func fmtDur(nanos int64) string {
	return time.Duration(nanos).Round(10 * time.Microsecond).String()
}

// render draws one frame from a summary snapshot. It is pure — the
// screen handling stays in main — so tests can assert on frames.
func render(s telemetry.Snapshot, addr string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fluxtop — %s — up %s — %s\n\n",
		addr, time.Duration(s.UptimeSeconds*float64(time.Second)).Round(time.Second),
		time.Unix(0, s.At).Format("15:04:05"))

	fmt.Fprintf(&b, "%-14s %5s %10s %10s %10s %10s %10s %8s\n",
		"GRAPH", "inst", "flows", "p50", "p95", "p99", "max", "err+drop")
	for _, g := range s.Graphs {
		var flows uint64
		for _, v := range g.Outcomes {
			flows += v
		}
		fmt.Fprintf(&b, "%-14s %5d %10d %10s %10s %10s %10s %8d\n",
			g.Graph, g.Instances, flows,
			fmtDur(int64(g.Flows.Quantile(0.50))), fmtDur(int64(g.Flows.Quantile(0.95))),
			fmtDur(int64(g.Flows.Quantile(0.99))), fmtDur(g.Flows.Max),
			g.Outcomes["errored"]+g.Outcomes["dropped"])
	}

	// Hottest nodes across all graphs, by cumulative time.
	type hotNode struct {
		graph string
		n     telemetry.NodeSnapshot
	}
	var nodes []hotNode
	for _, g := range s.Graphs {
		for _, n := range g.Nodes {
			nodes = append(nodes, hotNode{g.Graph, n})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].n.Hist.Sum > nodes[j].n.Hist.Sum })
	if len(nodes) > 8 {
		nodes = nodes[:8]
	}
	if len(nodes) > 0 {
		fmt.Fprintf(&b, "\n%-30s %10s %10s %10s %12s\n", "HOT NODE", "execs", "p50", "p95", "total")
		for _, hn := range nodes {
			fmt.Fprintf(&b, "%-30s %10d %10s %10s %12s\n",
				hn.graph+"."+hn.n.Node, hn.n.Hist.Count,
				fmtDur(int64(hn.n.Hist.Quantile(0.50))), fmtDur(int64(hn.n.Hist.Quantile(0.95))),
				time.Duration(hn.n.Hist.Sum).Round(time.Millisecond).String())
		}
	}

	if len(s.Streams) > 0 {
		fmt.Fprintf(&b, "\n%-34s %10s  %s\n", "STREAM", "last", "window")
		for _, ss := range s.Streams {
			fmt.Fprintf(&b, "%-34s %10d  %s\n", ss.Name(), ss.Last, spark(ss.Samples, 32))
		}
	}

	if len(s.Sheds) > 0 {
		fmt.Fprintf(&b, "\n%-34s %10s  %s\n", "SHEDS (server/reason)", "total", "window")
		for _, sh := range s.Sheds {
			fmt.Fprintf(&b, "%-34s %10d  %s\n", sh.Server+"/"+sh.Reason, sh.Count, spark(sh.Samples, 32))
		}
	}

	if len(s.Conns) > 0 {
		fmt.Fprintf(&b, "\n%-14s %10s %10s %10s %8s\n", "PLANE", "accepted", "admitted", "shed", "live")
		for _, c := range s.Conns {
			fmt.Fprintf(&b, "%-14s %10d %10d %10d %8d\n",
				c.Name, c.Stats.Accepted, c.Stats.Admitted, c.Stats.Shed, c.Stats.Live)
		}
	}

	if len(s.Traces) > 0 {
		fmt.Fprintf(&b, "\nSAMPLED FLOWS (most recent last)\n")
		for _, tr := range s.Traces {
			path := tr.Path
			if path == "" {
				path = fmt.Sprintf("path#%d", tr.PathID)
			}
			fmt.Fprintf(&b, "  %s  %-10s %8s  %s\n",
				time.Unix(0, tr.At).Format("15:04:05.000"), tr.Outcome,
				fmtDur(int64(tr.Elapsed)), path)
		}
	}
	return b.String()
}
