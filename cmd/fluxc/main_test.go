package main

import (
	"os"
	"strings"
	"testing"

	flux "github.com/flux-lang/flux"
)

func testProgram(t *testing.T) *flux.Program {
	t.Helper()
	src, err := os.ReadFile("../../testdata/imageserver.flux")
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	prog, err := flux.Compile("imageserver.flux", string(src))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestListPaths(t *testing.T) {
	out := listPaths(testProgram(t))
	if !strings.Contains(out, "source Listen: 11 paths") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "Listen -> ReadRequest -> CheckCache -> Write -> Complete") {
		t.Errorf("hit path missing:\n%s", out)
	}
	if !strings.Contains(out, "ERROR") {
		t.Errorf("error paths missing:\n%s", out)
	}
}

func TestSortedGraphs(t *testing.T) {
	gs := sortedGraphs(testProgram(t))
	if len(gs) != 1 {
		t.Fatalf("graphs = %d", len(gs))
	}
	if _, ok := gs["Listen"]; !ok {
		t.Error("Listen graph missing")
	}
}
