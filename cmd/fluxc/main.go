// Command fluxc is the Flux compiler driver (§3.1): it parses and
// type-checks a Flux program, reports deadlock-avoidance warnings, and
// emits the requested artifact.
//
// Usage:
//
//	fluxc [flags] program.flux
//
// Flags:
//
//	-check        parse, typecheck and print diagnostics only (default)
//	-dot          emit the flattened program graph in Graphviz format
//	-stubs pkg    emit Go binding stubs for package pkg
//	-sim          emit the per-node simulator source (Figure 5 style)
//	-paths        list every Ball-Larus path per source
//	-o file       write output to file instead of stdout
//
// A second mode compiles FScript page templates instead of Flux
// programs:
//
//	fluxc -fscript [-pkg name] [-o file] template.fs...
//
// emits a Go source file with one native render function per template,
// registered against the exact template bytes (see
// internal/servers/webserver/fscript/compile). The web servers' dynamic
// pages are checked in as generated output of this mode.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"sort"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/servers/webserver/fscript/compile"
)

func main() {
	check := flag.Bool("check", false, "typecheck only and print diagnostics")
	dot := flag.Bool("dot", false, "emit Graphviz graph")
	stubs := flag.String("stubs", "", "emit Go binding stubs for the named package")
	simSrc := flag.Bool("sim", false, "emit simulator source (Figure 5 style)")
	paths := flag.Bool("paths", false, "list Ball-Larus paths per source")
	fs := flag.Bool("fscript", false, "compile FScript templates to native Go")
	pkg := flag.String("pkg", "fscript", "package name for -fscript output")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *fs {
		if err := compileFScript(flag.Args(), *pkg, *out); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fluxc [flags] program.flux")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	prog, err := flux.Compile(file, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, w := range prog.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}

	var output string
	switch {
	case *dot:
		output = flux.GenerateDOT(prog)
	case *stubs != "":
		output = flux.GenerateStubs(prog, *stubs)
	case *simSrc:
		output = flux.GenerateSimulatorSource(prog)
	case *paths:
		output = listPaths(prog)
	default:
		*check = true
	}
	if *check {
		fmt.Printf("%s: %d nodes, %d sources, %d constraints, %d warnings\n",
			file, len(prog.Order), len(prog.Sources), len(prog.ConstraintNames()), len(prog.Warnings))
		for name, g := range sortedGraphs(prog) {
			fmt.Printf("  source %-20s %3d vertices, %4d paths\n", name, len(g.Nodes), g.NumPaths)
		}
		return
	}

	if *out == "" {
		fmt.Print(output)
		return
	}
	if err := os.WriteFile(*out, []byte(output), 0o644); err != nil {
		fatal(err)
	}
}

func sortedGraphs(p *flux.Program) map[string]*flux.FlatGraph {
	// Maps iterate randomly; print in sorted order for stable output.
	names := make([]string, 0, len(p.Graphs))
	for n := range p.Graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]*flux.FlatGraph, len(names))
	for _, n := range names {
		ordered[n] = p.Graphs[n]
	}
	return ordered
}

func listPaths(p *flux.Program) string {
	names := make([]string, 0, len(p.Graphs))
	for n := range p.Graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out string
	for _, name := range names {
		g := p.Graphs[name]
		out += fmt.Sprintf("source %s: %d paths\n", name, g.NumPaths)
		for id := uint64(0); id < g.NumPaths; id++ {
			out += fmt.Sprintf("  %4d  %s\n", id, g.PathLabel(id))
		}
	}
	return out
}

// compileFScript lowers page templates to native Go and writes the
// gofmt-ed generated file.
func compileFScript(files []string, pkg, out string) error {
	if len(files) == 0 {
		return fmt.Errorf("-fscript requires at least one template file")
	}
	templates := make([]compile.Template, 0, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		templates = append(templates, compile.Template{
			FuncName: compile.FuncNameFor(f),
			Source:   string(src),
		})
	}
	gen, err := compile.File(pkg, templates)
	if err != nil {
		return err
	}
	formatted, err := format.Source([]byte(gen))
	if err != nil {
		return fmt.Errorf("generated code does not parse (compiler bug): %w\n%s", err, gen)
	}
	if out == "" {
		fmt.Print(string(formatted))
		return nil
	}
	return os.WriteFile(out, formatted, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxc:", err)
	os.Exit(1)
}
