// Command fluxc is the Flux compiler driver (§3.1): it parses and
// type-checks a Flux program, reports deadlock-avoidance warnings, and
// emits the requested artifact.
//
// Usage:
//
//	fluxc [flags] program.flux
//
// Flags:
//
//	-check        parse, typecheck and print diagnostics only (default)
//	-dot          emit the flattened program graph in Graphviz format
//	-stubs pkg    emit Go binding stubs for package pkg
//	-sim          emit the per-node simulator source (Figure 5 style)
//	-paths        list every Ball-Larus path per source
//	-o file       write output to file instead of stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	flux "github.com/flux-lang/flux"
)

func main() {
	check := flag.Bool("check", false, "typecheck only and print diagnostics")
	dot := flag.Bool("dot", false, "emit Graphviz graph")
	stubs := flag.String("stubs", "", "emit Go binding stubs for the named package")
	simSrc := flag.Bool("sim", false, "emit simulator source (Figure 5 style)")
	paths := flag.Bool("paths", false, "list Ball-Larus paths per source")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fluxc [flags] program.flux")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	prog, err := flux.Compile(file, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, w := range prog.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}

	var output string
	switch {
	case *dot:
		output = flux.GenerateDOT(prog)
	case *stubs != "":
		output = flux.GenerateStubs(prog, *stubs)
	case *simSrc:
		output = flux.GenerateSimulatorSource(prog)
	case *paths:
		output = listPaths(prog)
	default:
		*check = true
	}
	if *check {
		fmt.Printf("%s: %d nodes, %d sources, %d constraints, %d warnings\n",
			file, len(prog.Order), len(prog.Sources), len(prog.ConstraintNames()), len(prog.Warnings))
		for name, g := range sortedGraphs(prog) {
			fmt.Printf("  source %-20s %3d vertices, %4d paths\n", name, len(g.Nodes), g.NumPaths)
		}
		return
	}

	if *out == "" {
		fmt.Print(output)
		return
	}
	if err := os.WriteFile(*out, []byte(output), 0o644); err != nil {
		fatal(err)
	}
}

func sortedGraphs(p *flux.Program) map[string]*flux.FlatGraph {
	// Maps iterate randomly; print in sorted order for stable output.
	names := make([]string, 0, len(p.Graphs))
	for n := range p.Graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]*flux.FlatGraph, len(names))
	for _, n := range names {
		ordered[n] = p.Graphs[n]
	}
	return ordered
}

func listPaths(p *flux.Program) string {
	names := make([]string, 0, len(p.Graphs))
	for n := range p.Graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out string
	for _, name := range names {
		g := p.Graphs[name]
		out += fmt.Sprintf("source %s: %d paths\n", name, g.NumPaths)
		for id := uint64(0); id < g.NumPaths; id++ {
			out += fmt.Sprintf("  %4d  %s\n", id, g.PathLabel(id))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxc:", err)
	os.Exit(1)
}
