module github.com/flux-lang/flux

go 1.22
