// Package flux benchmarks: one testing.B entry point per table and
// figure of the paper's evaluation, plus ablation benches (lock
// granularity, reader/writer modes, profiling overhead). These are
// scaled to testing.B budgets; cmd/fluxbench runs the full sweeps and
// prints the paper-style tables (see EXPERIMENTS.md for how to run them
// and where measured numbers land).
package flux_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	flux "github.com/flux-lang/flux"
	"github.com/flux-lang/flux/internal/loadgen"
	"github.com/flux-lang/flux/internal/servers/baseline/ctorrent"
	"github.com/flux-lang/flux/internal/servers/baseline/knotweb"
	"github.com/flux-lang/flux/internal/servers/baseline/sedaweb"
	"github.com/flux-lang/flux/internal/servers/bittorrent"
	"github.com/flux-lang/flux/internal/servers/gameserver"
	"github.com/flux-lang/flux/internal/servers/imageserver"
	"github.com/flux-lang/flux/internal/servers/webserver"
	"github.com/flux-lang/flux/internal/torrent"
)

// --- Table 1: lines of code --------------------------------------------------

// BenchmarkTable1LinesOfCode reports the Flux line counts of the four
// servers as benchmark metrics (LoC is a static property; the benchmark
// form keeps every Table/Figure reproducible through one command).
func BenchmarkTable1LinesOfCode(b *testing.B) {
	servers := map[string]string{
		"web":        webserver.FluxSource,
		"image":      imageserver.FluxSource,
		"bittorrent": bittorrent.FluxSource,
		"game":       gameserver.FluxSource,
	}
	for name, src := range servers {
		b.Run(name, func(b *testing.B) {
			var loc int
			for i := 0; i < b.N; i++ {
				loc = 0
				for _, line := range strings.Split(src, "\n") {
					t := strings.TrimSpace(line)
					if t != "" && !strings.HasPrefix(t, "//") {
						loc++
					}
				}
			}
			b.ReportMetric(float64(loc), "flux-lines")
		})
	}
}

// --- Figure 3: web server ----------------------------------------------------

type webServer interface {
	Addr() string
	Run(context.Context) error
}

func startWeb(b *testing.B, name string, files *loadgen.FileSet) (string, func()) {
	b.Helper()
	var srv webServer
	var err error
	switch name {
	case "flux-thread":
		srv, err = webserver.New(webserver.Config{Files: files, Engine: flux.ThreadPerFlow})
	case "flux-threadpool":
		srv, err = webserver.New(webserver.Config{Files: files, Engine: flux.ThreadPool, PoolSize: 32})
	case "flux-event":
		srv, err = webserver.New(webserver.Config{Files: files, Engine: flux.EventDriven, SourceTimeout: 2 * time.Millisecond})
	case "flux-steal":
		srv, err = webserver.New(webserver.Config{Files: files, Engine: flux.WorkStealing, SourceTimeout: 2 * time.Millisecond})
	case "knot-like":
		srv, err = knotweb.New(knotweb.Config{Files: files})
	case "haboob-like":
		srv, err = sedaweb.New(sedaweb.Config{Files: files, WorkersPerStage: 4})
	}
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Run(ctx) }()
	return srv.Addr(), func() { cancel(); <-done }
}

// BenchmarkFigure3WebThroughput measures requests/sec and mean latency
// for each web server at a fixed concurrency (16 clients), the heart of
// Figure 3's comparison.
func BenchmarkFigure3WebThroughput(b *testing.B) {
	files := loadgen.NewFileSet(1)
	for _, name := range []string{"flux-thread", "flux-threadpool", "flux-event", "knot-like", "haboob-like"} {
		b.Run(name, func(b *testing.B) {
			addr, stop := startWeb(b, name, files)
			defer stop()
			b.ResetTimer()
			res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
				Addr:     addr,
				Clients:  16,
				Files:    files,
				Duration: time.Duration(b.N) * 20 * time.Millisecond,
				Warmup:   0,
				Seed:     1,
			})
			b.StopTimer()
			b.ReportMetric(res.Throughput, "req/s")
			b.ReportMetric(float64(res.Latency.Mean.Microseconds()), "mean-latency-µs")
		})
	}
}

// BenchmarkSpecwebMixedKeepAlive measures the SPECweb99-like mixed
// macro workload — keep-alive clients issuing the static class mix plus
// ad-rotation dynamic GETs and form POSTs — the paper's own traffic
// shape for Figure 3 (cmd/fluxbench -exp web runs the full sweep).
func BenchmarkSpecwebMixedKeepAlive(b *testing.B) {
	files := loadgen.NewFileSet(1)
	for _, name := range []string{"flux-threadpool", "flux-event", "flux-steal", "knot-like", "haboob-like"} {
		b.Run(name, func(b *testing.B) {
			addr, stop := startWeb(b, name, files)
			defer stop()
			b.ResetTimer()
			res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
				Addr:            addr,
				Clients:         16,
				Files:           files,
				KeepAlive:       true,
				Duration:        time.Duration(b.N) * 20 * time.Millisecond,
				Warmup:          0,
				DynamicFraction: loadgen.DefaultDynamicFraction,
				PostFraction:    loadgen.DefaultPostFraction,
				Seed:            11,
			})
			b.StopTimer()
			b.ReportMetric(res.Throughput, "req/s")
			b.ReportMetric(float64(res.Latency.P95.Microseconds()), "p95-latency-µs")
			b.ReportMetric(float64(res.Reconnects), "reconnects")
		})
	}
}

// --- Figure 4: BitTorrent -----------------------------------------------------

func benchTorrentData(b *testing.B) (*torrent.MetaInfo, []byte) {
	b.Helper()
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(4)).Read(data)
	meta, err := torrent.New("bench.bin", "", data, 256*1024)
	if err != nil {
		b.Fatal(err)
	}
	return meta, data
}

// BenchmarkFigure4BitTorrent measures completions/sec and network
// throughput for the Flux peer versus the ctorrent-like baseline at a
// fixed swarm size.
func BenchmarkFigure4BitTorrent(b *testing.B) {
	meta, data := benchTorrentData(b)
	type btServer interface {
		Addr() string
		Run(context.Context) error
	}
	targets := map[string]func() (btServer, error){
		"flux-threadpool": func() (btServer, error) {
			return bittorrent.New(bittorrent.Config{Meta: meta, Content: data, Engine: flux.ThreadPool, PoolSize: 32})
		},
		"flux-event": func() (btServer, error) {
			return bittorrent.New(bittorrent.Config{Meta: meta, Content: data, Engine: flux.EventDriven, SourceTimeout: 2 * time.Millisecond})
		},
		"ctorrent-like": func() (btServer, error) {
			return ctorrent.New(ctorrent.Config{Meta: meta, Content: data})
		},
	}
	for _, name := range []string{"flux-threadpool", "flux-event", "ctorrent-like"} {
		b.Run(name, func(b *testing.B) {
			srv, err := targets[name]()
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { defer close(done); _ = srv.Run(ctx) }()
			defer func() { cancel(); <-done }()
			b.ResetTimer()
			res := loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
				Addr: srv.Addr(), Meta: meta,
				Clients:  4,
				Duration: time.Duration(b.N)*50*time.Millisecond + 500*time.Millisecond,
				Seed:     2,
			})
			b.StopTimer()
			b.ReportMetric(res.CompPerSec, "completions/s")
			b.ReportMetric(res.Mbps, "Mb/s")
		})
	}
}

// --- §4.4: game server ---------------------------------------------------------

// BenchmarkGameServerHeartbeat measures the server's per-turn state
// computation and the heartbeat observed by clients at growing player
// counts.
func BenchmarkGameServerHeartbeat(b *testing.B) {
	for _, players := range []int{8, 64} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			srv, err := gameserver.New(gameserver.Config{
				Heartbeat: 20 * time.Millisecond, // accelerated for bench budgets
				Engine:    flux.ThreadPool, PoolSize: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { defer close(done); _ = srv.Run(ctx) }()
			defer func() { cancel(); <-done }()
			b.ResetTimer()
			res := loadgen.RunGameLoad(context.Background(), loadgen.GameClientConfig{
				Addr:     srv.Addr(),
				Players:  players,
				MoveHz:   50,
				Duration: time.Duration(b.N)*20*time.Millisecond + 400*time.Millisecond,
				Seed:     3,
			})
			b.StopTimer()
			_, meanTurn := srv.TickStats()
			b.ReportMetric(float64(meanTurn.Nanoseconds()), "turn-ns")
			b.ReportMetric(float64(res.InterArrival.P95.Microseconds()), "heartbeat-p95-µs")
		})
	}
}

// --- Figure 6: simulator prediction ---------------------------------------------

// BenchmarkFigure6SimVsActual profiles a 1-CPU image-server run, then
// reports predicted vs measured throughput at 2 CPUs under overload.
func BenchmarkFigure6SimVsActual(b *testing.B) {
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	compressWork := 2 * time.Millisecond

	runProfiled := func() (*flux.Program, *flux.Profiler) {
		prof := flux.NewProfiler()
		srv, err := imageserver.New(imageserver.Config{
			Engine: flux.ThreadPool, PoolSize: 8,
			CompressWork: compressWork, CacheBytes: 1, Profiler: prof,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); _ = srv.Run(ctx) }()
		loadgen.RunImageLoad(context.Background(), loadgen.ImageClientConfig{
			Addr: srv.Addr(), Rate: 100, Duration: 800 * time.Millisecond, Warmup: 100 * time.Millisecond, Seed: 5,
		})
		cancel()
		<-done
		return srv.Program(), prof
	}

	runtime.GOMAXPROCS(1)
	prog, prof := runProfiled()
	params := flux.ParamsFromProfile(prog, prof)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.CPUs = 2
		params.Duration, params.Warmup, params.Seed = 20, 2, int64(i)
		params.Sources = map[string]flux.SimSourceParams{"Listen": {Rate: 2000}}
		r := flux.Simulate(prog, params)
		if i == b.N-1 {
			b.ReportMetric(r.Throughput, "predicted-req/s-2cpu")
			b.ReportMetric(100*r.Utilization, "predicted-util-%")
		}
	}
}

// --- §5.2: path profiling ---------------------------------------------------------

// BenchmarkPathProfileBitTorrent runs the profiled BT peer under load
// and reports the hot-path split (§5.2's transfer vs empty-poll paths).
func BenchmarkPathProfileBitTorrent(b *testing.B) {
	meta, data := benchTorrentData(b)
	prof := flux.NewProfiler()
	srv, err := bittorrent.New(bittorrent.Config{
		Meta: meta, Content: data,
		Engine: flux.ThreadPool, PoolSize: 16,
		PollInterval: 300 * time.Microsecond,
		Profiler:     prof,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Run(ctx) }()
	defer func() { cancel(); <-done }()

	b.ResetTimer()
	loadgen.RunBTLoad(context.Background(), loadgen.BTClientConfig{
		Addr: srv.Addr(), Meta: meta,
		Clients:  4,
		Duration: time.Duration(b.N)*50*time.Millisecond + 500*time.Millisecond,
		Seed:     6,
	})
	b.StopTimer()

	g := srv.Program().Graphs["Poll"]
	rows := prof.HotPaths(g, flux.ByCount, 2)
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].Count), "top-path-count")
	}
	var transferMean, pollCount float64
	for _, r := range prof.HotPaths(g, flux.ByCount, 0) {
		if strings.Contains(r.Label, "Request") {
			transferMean = float64(r.Mean().Microseconds())
		}
		if strings.Contains(r.Label, "ERROR") && strings.Contains(r.Label, "CheckSockets") {
			pollCount = float64(r.Count)
		}
	}
	b.ReportMetric(transferMean, "transfer-path-µs")
	b.ReportMetric(pollCount, "empty-poll-count")
}

// --- Ablations ----------------------------------------------------------------------

// BenchmarkAblationLockGranularity compares fine-grained constraints
// (the image server's three cache nodes) against one coarse constraint
// spanning the whole Handler abstract node (§2.5.2's granularity
// discussion), by simulation at saturation.
func BenchmarkAblationLockGranularity(b *testing.B) {
	fine, err := flux.Compile("imageserver.flux", imageserver.FluxSource)
	if err != nil {
		b.Fatal(err)
	}
	coarseSrc := strings.Replace(imageserver.FluxSource,
		"atomic CheckCache:{cache};",
		"atomic Image:{cache};\natomic CheckCache:{cache};", 1)
	coarse, err := flux.Compile("imageserver-coarse.flux", coarseSrc)
	if err != nil {
		b.Fatal(err)
	}
	simOnce := func(p *flux.Program, seed int64) float64 {
		params := flux.SimParams{
			CPUs: 4, Duration: 30, Warmup: 3, Seed: seed,
			Sources:    map[string]flux.SimSourceParams{"Listen": {Rate: 2000, Exponential: true}},
			NodeTime:   map[string]float64{"Compress": 0.002, "ReadRequest": 0.0001, "Write": 0.0001},
			BranchProb: map[string][]float64{"Handler": {0, 1}}, // all misses
		}
		return flux.Simulate(p, params).Throughput
	}
	b.Run("fine-grained", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			t = simOnce(fine, int64(i))
		}
		b.ReportMetric(t, "req/s")
	})
	b.Run("coarse-grained", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			t = simOnce(coarse, int64(i))
		}
		b.ReportMetric(t, "req/s")
	})
}

// BenchmarkAblationReaderWriter compares reader vs writer constraints on
// a read-mostly node by simulation, quantifying §2.5's motivation for
// reader modes.
func BenchmarkAblationReaderWriter(b *testing.B) {
	const tpl = `
Arrive () => (int v);
Lookup (int v) => ();
source Arrive => Flow;
Flow = Lookup;
atomic Lookup:{tableMODE};
`
	for _, mode := range []struct{ name, mark string }{{"reader", "?"}, {"writer", "!"}} {
		b.Run(mode.name, func(b *testing.B) {
			prog, err := flux.Compile("rw.flux", strings.Replace(tpl, "MODE", mode.mark, 1))
			if err != nil {
				b.Fatal(err)
			}
			var t float64
			for i := 0; i < b.N; i++ {
				r := flux.Simulate(prog, flux.SimParams{
					CPUs: 8, Duration: 20, Warmup: 2, Seed: int64(i),
					Sources:  map[string]flux.SimSourceParams{"Arrive": {Rate: 4000, Exponential: true}},
					NodeTime: map[string]float64{"Lookup": 0.002},
				})
				t = r.Throughput
			}
			b.ReportMetric(t, "req/s")
		})
	}
}

// BenchmarkAblationProfilingOverhead measures the cost of path
// profiling (§5.2 claims one arithmetic op and two timer calls per
// node): the same web server with and without a profiler attached.
func BenchmarkAblationProfilingOverhead(b *testing.B) {
	files := loadgen.NewFileSet(1)
	for _, mode := range []string{"uninstrumented", "profiled"} {
		b.Run(mode, func(b *testing.B) {
			cfg := webserver.Config{Files: files, Engine: flux.ThreadPool, PoolSize: 16}
			if mode == "profiled" {
				cfg.Profiler = flux.NewProfiler()
			}
			srv, err := webserver.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { defer close(done); _ = srv.Run(ctx) }()
			defer func() { cancel(); <-done }()
			b.ResetTimer()
			res := loadgen.RunWebLoad(context.Background(), loadgen.WebClientConfig{
				Addr: srv.Addr(), Clients: 8, Files: files,
				Duration: time.Duration(b.N)*20*time.Millisecond + 300*time.Millisecond,
				Seed:     9,
			})
			b.StopTimer()
			b.ReportMetric(res.Throughput, "req/s")
		})
	}
}

// --- compile/runtime microbenchmarks ----------------------------------------------

// BenchmarkCompileImageServer measures end-to-end compilation of the
// Figure 2 program.
func BenchmarkCompileImageServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flux.Compile("imageserver.flux", imageserver.FluxSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowExecution measures the runtime's per-flow overhead on a
// trivial three-node program (no I/O): coordination cost per request.
func BenchmarkFlowExecution(b *testing.B) {
	prog, err := flux.Compile("micro.flux", `
Gen () => (int v);
Work (int v) => (int v);
Done (int v) => ();
source Gen => Flow;
Flow = Work -> Done;
`)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []flux.EngineKind{flux.ThreadPerFlow, flux.ThreadPool, flux.EventDriven} {
		b.Run(kind.String(), func(b *testing.B) {
			n := 0
			bind := flux.NewBindings().
				BindSource("Gen", func(fl *flux.Flow) (flux.Record, error) {
					if n >= b.N {
						return nil, flux.ErrStop
					}
					n++
					return flux.Record{n}, nil
				}).
				BindNode("Work", func(fl *flux.Flow, in flux.Record) (flux.Record, error) { return in, nil }).
				BindNode("Done", func(fl *flux.Flow, in flux.Record) (flux.Record, error) { return nil, nil })
			srv, err := flux.New(prog, bind, flux.WithEngine(kind), flux.WithPoolSize(8),
				flux.WithSourceTimeout(time.Millisecond))
			if err != nil {
				b.Fatal(err)
			}
			n = 0
			b.ResetTimer()
			if err := srv.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		})
	}
}
